package fleet

import (
	"math"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// RateEstimator is an exponentially-decaying byte-rate estimator for
// irregularly spaced samples: Observe adds bytes to a level that decays
// with a configurable half-life, and Rate converts the level to bytes
// per second. At a steady input of n bytes every T (T much smaller than
// the half-life) the estimate converges to n/T; after input stops it
// halves every half-life. Not goroutine-safe — the Watchdog serialises
// access.
type RateEstimator struct {
	halfLife time.Duration
	level    float64
	last     time.Time
}

// defaultHalfLife smooths rate estimates over a few heartbeat intervals.
const defaultHalfLife = 5 * time.Second

// NewRateEstimator builds an estimator (half-life <= 0 takes 5s).
func NewRateEstimator(halfLife time.Duration) *RateEstimator {
	if halfLife <= 0 {
		halfLife = defaultHalfLife
	}
	return &RateEstimator{halfLife: halfLife}
}

// decay folds the elapsed time since the last observation into the level.
func (e *RateEstimator) decay(now time.Time) {
	if !e.last.IsZero() {
		if dt := now.Sub(e.last); dt > 0 {
			e.level *= math.Exp2(-float64(dt) / float64(e.halfLife))
		}
	}
	e.last = now
}

// Observe records n bytes arriving at now.
func (e *RateEstimator) Observe(n int, now time.Time) {
	e.decay(now)
	e.level += float64(n)
}

// Rate returns the estimated byte rate (bytes/second) as of now.
func (e *RateEstimator) Rate(now time.Time) float64 {
	e.decay(now)
	return e.level * math.Ln2 / e.halfLife.Seconds()
}

// WatchdogConfig parameterises a Watchdog.
type WatchdogConfig struct {
	// DiskWatermarkBytes trips a node whose reported dock disk usage
	// reaches it; 0 disables the disk watermark.
	DiskWatermarkBytes uint64
	// IngestWatermarkBps trips a node whose event ingest byte-rate
	// reaches it; 0 disables the ingest watermark.
	IngestWatermarkBps float64
	// RateHalfLife is the ingest estimator's half-life (default 5s).
	RateHalfLife time.Duration
	// ResumeFraction is the hysteresis band: a tripped node resumes only
	// once every metric falls below watermark*ResumeFraction (default
	// 0.85).
	ResumeFraction float64
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Telemetry, when set, exports the alarm counter and the
	// over-watermark node gauge.
	Telemetry *telemetry.Registry
}

// Watchdog tracks per-node dock disk usage and event ingest byte-rate
// and trips an over-watermark latch (with hysteresis) the scheduler
// consults to stop routing waves at a node drowning in data.
type Watchdog struct {
	cfg WatchdogConfig

	mu    sync.Mutex
	nodes map[string]*nodeWatch

	alarms *telemetry.Counter
}

type nodeWatch struct {
	est  *RateEstimator
	disk uint64
	over bool
}

// NewWatchdog builds a watchdog (zero config disables both watermarks).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.RateHalfLife <= 0 {
		cfg.RateHalfLife = defaultHalfLife
	}
	if cfg.ResumeFraction <= 0 || cfg.ResumeFraction >= 1 {
		cfg.ResumeFraction = 0.85
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	w := &Watchdog{cfg: cfg, nodes: make(map[string]*nodeWatch)}
	if reg := cfg.Telemetry; reg != nil {
		w.alarms = reg.Counter("naplet_fleet_watchdog_alarms_total",
			"nodes tripping a disk or ingest watermark")
		reg.GaugeFunc("naplet_fleet_nodes_over_watermark",
			"nodes currently latched over a watchdog watermark",
			func() float64 { return float64(w.overCount()) })
	}
	return w
}

func (w *Watchdog) overCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, nw := range w.nodes {
		if nw.over {
			n++
		}
	}
	return n
}

func (w *Watchdog) get(node string) *nodeWatch {
	nw, ok := w.nodes[node]
	if !ok {
		nw = &nodeWatch{est: NewRateEstimator(w.cfg.RateHalfLife)}
		w.nodes[node] = nw
	}
	return nw
}

// evaluate re-judges the latch after an observation. Callers hold w.mu.
func (w *Watchdog) evaluate(nw *nodeWatch, now time.Time) {
	rate := nw.est.Rate(now)
	diskOver := w.cfg.DiskWatermarkBytes > 0 && nw.disk >= w.cfg.DiskWatermarkBytes
	rateOver := w.cfg.IngestWatermarkBps > 0 && rate >= w.cfg.IngestWatermarkBps
	if !nw.over {
		if diskOver || rateOver {
			nw.over = true
			if w.alarms != nil {
				w.alarms.Inc()
			}
		}
		return
	}
	// Latched: resume only once both metrics clear the hysteresis band.
	diskClear := w.cfg.DiskWatermarkBytes == 0 ||
		float64(nw.disk) < float64(w.cfg.DiskWatermarkBytes)*w.cfg.ResumeFraction
	rateClear := w.cfg.IngestWatermarkBps == 0 ||
		rate < w.cfg.IngestWatermarkBps*w.cfg.ResumeFraction
	if diskClear && rateClear {
		nw.over = false
	}
}

// ObserveDisk records a node's reported dock disk usage (heartbeats).
func (w *Watchdog) ObserveDisk(node string, bytes uint64) {
	w.mu.Lock()
	nw := w.get(node)
	nw.disk = bytes
	w.evaluate(nw, w.cfg.Clock())
	w.mu.Unlock()
}

// ObserveIngest records n bytes of event traffic arriving from node.
func (w *Watchdog) ObserveIngest(node string, n int) {
	now := w.cfg.Clock()
	w.mu.Lock()
	nw := w.get(node)
	nw.est.Observe(n, now)
	w.evaluate(nw, now)
	w.mu.Unlock()
}

// Over reports whether node is latched over a watermark right now.
func (w *Watchdog) Over(node string) bool {
	now := w.cfg.Clock()
	w.mu.Lock()
	defer w.mu.Unlock()
	nw, ok := w.nodes[node]
	if !ok {
		return false
	}
	// Rates decay on their own; re-judge so a quiet node un-latches
	// without waiting for its next observation.
	w.evaluate(nw, now)
	return nw.over
}

// Rate returns node's estimated ingest byte-rate (bytes/second).
func (w *Watchdog) Rate(node string) float64 {
	now := w.cfg.Clock()
	w.mu.Lock()
	defer w.mu.Unlock()
	nw, ok := w.nodes[node]
	if !ok {
		return 0
	}
	return nw.est.Rate(now)
}

// Forget drops a node's watchdog state.
func (w *Watchdog) Forget(node string) {
	w.mu.Lock()
	delete(w.nodes, node)
	w.mu.Unlock()
}
