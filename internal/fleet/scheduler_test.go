package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeFleet is an in-memory Launcher + NodeSource for scheduler tests.
type fakeFleet struct {
	mu      sync.Mutex
	nodes   []string
	dead    map[string]bool
	nextID  int
	running map[string]int // node -> currently waiting launches
	maxSeen map[string]int // node -> max concurrent launches observed
	byNode  map[string]int // node -> completed launches
	// failAt makes Wait fail with ErrNodeDead for launches at this
	// node (simulating a crash mid-wave).
	failAt string
	// trapFirst makes the first N waits report a trapped naplet.
	trapFirst int
	// terminateAll makes every wait report a terminated naplet.
	terminateAll bool
	// launchErrAt makes Launch itself error at this node.
	launchErrAt string
	// waitDelay simulates naplet run time.
	waitDelay time.Duration
}

func newFakeFleet(nodes ...string) *fakeFleet {
	return &fakeFleet{
		nodes:   nodes,
		dead:    make(map[string]bool),
		running: make(map[string]int),
		maxSeen: make(map[string]int),
		byNode:  make(map[string]int),
	}
}

func (f *fakeFleet) Schedulable() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for _, n := range f.nodes {
		if !f.dead[n] {
			out = append(out, n)
		}
	}
	return out
}

func (f *fakeFleet) Dead(node string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead[node]
}

func (f *fakeFleet) Launch(_ context.Context, node string, spec LaunchSpec) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node == f.launchErrAt {
		return "", errors.New("connection refused")
	}
	f.nextID++
	f.running[node]++
	if f.running[node] > f.maxSeen[node] {
		f.maxSeen[node] = f.running[node]
	}
	return fmt.Sprintf("n%d@%s", f.nextID, node), nil
}

func (f *fakeFleet) Wait(ctx context.Context, node, nid string) (string, string, error) {
	if f.waitDelay > 0 {
		select {
		case <-time.After(f.waitDelay):
		case <-ctx.Done():
			return "", "", ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.running[node]--
	if f.dead[node] || node == f.failAt {
		return "", "", fmt.Errorf("%w: %s", ErrNodeDead, node)
	}
	if f.trapFirst > 0 {
		f.trapFirst--
		return "trapped", "agent bug", nil
	}
	if f.terminateAll {
		return "terminated", "killed by owner", nil
	}
	f.byNode[node]++
	return "completed", "toured from " + node, nil
}

func newTestScheduler(t *testing.T, f *fakeFleet) *Scheduler {
	t.Helper()
	s, err := NewScheduler(SchedulerConfig{Nodes: f, Launcher: f, PollEvery: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchedulerSpreadsWaveAcrossNodes(t *testing.T) {
	f := newFakeFleet("d1", "d2", "d3")
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Name:     "w",
		Count:    4,
		Routes:   []string{"seq(a,b)", "seq(b,c)", "seq(c,a)"},
		Codebase: "test.Collector",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 12 || res.Completed != 12 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	// Least-loaded placement spreads evenly over identical nodes.
	for _, n := range []string{"d1", "d2", "d3"} {
		if res.PerNode[n] != 4 {
			t.Fatalf("per-node = %v", res.PerNode)
		}
	}
	for i, l := range res.Launches {
		if l.Status != "completed" || l.NapletID == "" || l.Result == "" {
			t.Fatalf("launch %d = %+v", i, l)
		}
		if want := []string{"seq(a,b)", "seq(b,c)", "seq(c,a)"}[i%3]; l.Route != want {
			t.Fatalf("launch %d route = %q, want %q", i, l.Route, want)
		}
	}
}

func TestSchedulerRespectsPerNodeCap(t *testing.T) {
	f := newFakeFleet("d1", "d2")
	f.waitDelay = 5 * time.Millisecond
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Count:      10,
		Routes:     []string{"seq(a)"},
		Codebase:   "test.Collector",
		PerNodeCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 10 {
		t.Fatalf("completed = %d", res.Completed)
	}
	for n, max := range f.maxSeen {
		if max > 2 {
			t.Fatalf("%s saw %d concurrent launches, cap 2", n, max)
		}
	}
}

func TestSchedulerReschedulesOffDeadNode(t *testing.T) {
	f := newFakeFleet("d1", "d2", "d3")
	f.waitDelay = 2 * time.Millisecond
	// Launches placed at d3 die mid-wave (Wait reports ErrNodeDead), and
	// the node then drops out of the schedulable set — the PR 5 failover
	// story seen from the control plane.
	f.failAt = "d3"
	go func() {
		time.Sleep(time.Millisecond)
		f.mu.Lock()
		f.dead["d3"] = true
		f.mu.Unlock()
	}()
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Count:    6,
		Routes:   []string{"seq(a,b)"},
		Codebase: "test.Collector",
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.PerNode["d3"] != 0 {
		t.Fatalf("dead node completed launches: %v", res.PerNode)
	}
	if res.Rescheduled == 0 {
		t.Fatal("no reschedules recorded despite a dead node")
	}
}

func TestSchedulerLaunchErrorsDoNotBurnRetryBudget(t *testing.T) {
	f := newFakeFleet("d1", "d2")
	f.launchErrAt = "d2"
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Count:    8,
		Routes:   []string{"seq(a)"},
		Codebase: "test.Collector",
		Retries:  1, // tight wait budget; launch failures get 4x
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("result = %+v", res)
	}
	if res.PerNode["d1"] != 8 {
		t.Fatalf("per-node = %v", res.PerNode)
	}
}

func TestSchedulerRetriesTrappedLaunches(t *testing.T) {
	f := newFakeFleet("d1", "d2")
	f.trapFirst = 3 // transient traps; later attempts complete
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Count:    4,
		Routes:   []string{"seq(a)"},
		Codebase: "test.Collector",
		Retries:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 || res.Failed != 0 || res.Rescheduled != 3 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSchedulerTerminatedIsFinal(t *testing.T) {
	f := newFakeFleet("d1")
	f.terminateAll = true
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Count:    2,
		Routes:   []string{"seq(a)"},
		Codebase: "test.Collector",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Owner termination is an outcome, not an infra failure to retry.
	if res.Failed != 2 || res.Rescheduled != 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, l := range res.Launches {
		if l.Status != "terminated" || l.Err != "killed by owner" {
			t.Fatalf("launch = %+v", l)
		}
	}
}

func TestSchedulerFailsWaveWhenBudgetExhausted(t *testing.T) {
	f := newFakeFleet("d1")
	f.failAt = "d1" // every wait fails, nowhere else to go
	s := newTestScheduler(t, f)
	res, err := s.Run(context.Background(), WaveSpec{
		Count:    2,
		Routes:   []string{"seq(a)"},
		Codebase: "test.Collector",
		Retries:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Failed != 2 {
		t.Fatalf("result = %+v", res)
	}
	for _, l := range res.Launches {
		if l.Status != "failed" || l.Err == "" {
			t.Fatalf("launch = %+v", l)
		}
	}
}

func TestSchedulerContextCancelFailsRemainder(t *testing.T) {
	f := newFakeFleet("d1")
	f.waitDelay = 50 * time.Millisecond
	s := newTestScheduler(t, f)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := s.Run(ctx, WaveSpec{
		Count:      20,
		Routes:     []string{"seq(a)"},
		Codebase:   "test.Collector",
		PerNodeCap: 1,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if res.Completed+res.Failed != res.Total {
		t.Fatalf("outcomes do not partition: %+v", res)
	}
}

func TestSchedulerFailsWaveWhenFleetStaysEmpty(t *testing.T) {
	f := newFakeFleet("d1")
	f.dead["d1"] = true
	s, err := NewScheduler(SchedulerConfig{
		Nodes:        f,
		Launcher:     f,
		PollEvery:    100 * time.Microsecond,
		NoNodesAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var res *WaveResult
	go func() {
		defer close(done)
		res, err = s.Run(context.Background(), WaveSpec{
			Count:    3,
			Routes:   []string{"seq(a)"},
			Codebase: "test.Collector",
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wave with zero schedulable nodes never terminated")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Failed != 3 {
		t.Fatalf("result = %+v", res)
	}
	for _, l := range res.Launches {
		if l.Status != "failed" || l.Err != "no schedulable nodes" {
			t.Fatalf("launch = %+v", l)
		}
	}
}

func TestSchedulerRejectsBadSpecs(t *testing.T) {
	f := newFakeFleet("d1")
	s := newTestScheduler(t, f)
	if _, err := s.Run(context.Background(), WaveSpec{Codebase: "x"}); err == nil {
		t.Fatal("routeless wave accepted")
	}
	if _, err := s.Run(context.Background(), WaveSpec{Routes: []string{"seq(a)"}}); err == nil {
		t.Fatal("codebase-less wave accepted")
	}
}
