package fleet

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/health"
)

// testRegistry builds a registry on a fake clock with the chaos-standard
// 2/4 suspect/dead thresholds.
func testRegistry(t *testing.T, wd *Watchdog) (*Registry, *time.Time) {
	t.Helper()
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	det := health.New(health.Config{SuspectThreshold: 2, DeadThreshold: 4, Clock: clock})
	r := NewRegistry(RegistryConfig{
		HeartbeatEvery: time.Second,
		Health:         det,
		Watchdog:       wd,
		Clock:          clock,
	})
	return r, &now
}

func TestRegistryRegisterAndHeartbeat(t *testing.T) {
	r, now := testRegistry(t, nil)
	if err := r.Register(RegisterBody{Node: "d1", MetricsAddr: ":8081", Labels: []string{"zone=a"}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(RegisterBody{}); err == nil {
		t.Fatal("nameless registration accepted")
	}
	*now = now.Add(time.Second)
	if err := r.Heartbeat(HeartbeatBody{Node: "d1", Seq: 1, Residents: 3, DiskUsedBytes: 77}); err != nil {
		t.Fatal(err)
	}
	// Reordered (stale) beacons are dropped without error.
	if err := r.Heartbeat(HeartbeatBody{Node: "d1", Seq: 1, Residents: 99}); err != nil {
		t.Fatal(err)
	}
	if err := r.Heartbeat(HeartbeatBody{Node: "ghost", Seq: 1}); err == nil {
		t.Fatal("unknown node heartbeat accepted")
	}
	ns := r.Nodes()
	if len(ns) != 1 {
		t.Fatalf("nodes = %d", len(ns))
	}
	n := ns[0]
	if n.Name != "d1" || n.Residents != 3 || n.DiskUsedBytes != 77 || n.State != "alive" {
		t.Fatalf("node = %+v", n)
	}
	if !reflect.DeepEqual(n.Labels, []string{"zone=a"}) {
		t.Fatalf("labels = %v", n.Labels)
	}
	if got := r.Schedulable(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("schedulable = %v", got)
	}
}

func TestRegistryLivenessSweep(t *testing.T) {
	r, now := testRegistry(t, nil)
	for _, n := range []string{"d1", "d2"} {
		if err := r.Register(RegisterBody{Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	// d1 heartbeats; d2 goes silent.
	for i := 1; i <= 6; i++ {
		*now = now.Add(time.Second)
		if err := r.Heartbeat(HeartbeatBody{Node: "d1", Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		r.CheckLiveness()
		// The sweep is idempotent: extra sweeps within the same interval
		// report nothing new.
		r.CheckLiveness()
	}
	// After 6s of silence (minus one interval grace) d2 has missed 5
	// intervals — past the dead threshold of 4.
	if !r.Dead("d2") {
		t.Fatal("silent node not dead")
	}
	if r.Dead("d1") {
		t.Fatal("heartbeating node dead")
	}
	if got := r.Schedulable(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("schedulable = %v", got)
	}
	// An unknown node is no launch target.
	if !r.Dead("never-registered") {
		t.Fatal("unknown node not treated as dead")
	}

	// The dead node re-registers: back alive after enough successes.
	for i := 0; i < 8; i++ {
		if err := r.Register(RegisterBody{Node: "d2"}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Dead("d2") {
		t.Fatal("re-registered node still dead")
	}
	if got := r.Schedulable(); len(got) != 2 {
		t.Fatalf("schedulable = %v", got)
	}
}

func TestRegistryReregisterResetsHeartbeatSeq(t *testing.T) {
	r, now := testRegistry(t, nil)
	if err := r.Register(RegisterBody{Node: "d1"}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		*now = now.Add(time.Second)
		if err := r.Heartbeat(HeartbeatBody{Node: "d1", Seq: uint64(i), Residents: 9, Draining: true}); err != nil {
			t.Fatal(err)
		}
	}
	// The dock restarts and re-registers under the same name: its
	// heartbeat counter restarts at 1, and the beacons must not be
	// dropped as stale replays of the old incarnation.
	if err := r.Register(RegisterBody{Node: "d1"}); err != nil {
		t.Fatal(err)
	}
	ns := r.Nodes()
	if ns[0].Seq != 0 || ns[0].Residents != 0 || ns[0].Draining {
		t.Fatalf("stale state survived re-registration: %+v", ns[0].NodeInfo)
	}
	*now = now.Add(time.Second)
	if err := r.Heartbeat(HeartbeatBody{Node: "d1", Seq: 1, Residents: 2}); err != nil {
		t.Fatal(err)
	}
	ns = r.Nodes()
	if ns[0].Seq != 1 || ns[0].Residents != 2 || !ns[0].LastSeen.Equal(*now) {
		t.Fatalf("post-restart heartbeat dropped as stale: %+v", ns[0].NodeInfo)
	}
}

func TestRegistryDrainingExcludedFromScheduling(t *testing.T) {
	r, now := testRegistry(t, nil)
	for _, n := range []string{"d1", "d2"} {
		if err := r.Register(RegisterBody{Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	*now = now.Add(time.Second)
	if err := r.Heartbeat(HeartbeatBody{Node: "d2", Seq: 1, Draining: true}); err != nil {
		t.Fatal(err)
	}
	if got := r.Schedulable(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("schedulable = %v", got)
	}
	// Draining is not dead: the scheduler just stops placing new work.
	if r.Dead("d2") {
		t.Fatal("draining node presumed dead")
	}
}

func TestRegistryWatchdogGatesScheduling(t *testing.T) {
	now := time.Unix(0, 0)
	wd := NewWatchdog(WatchdogConfig{
		DiskWatermarkBytes: 1000,
		Clock:              func() time.Time { return now },
	})
	r, clk := testRegistry(t, wd)
	for _, n := range []string{"d1", "d2"} {
		if err := r.Register(RegisterBody{Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	*clk = clk.Add(time.Second)
	// d2's heartbeat reports disk over the watermark; the registry feeds
	// the watchdog and scheduling excludes it.
	if err := r.Heartbeat(HeartbeatBody{Node: "d2", Seq: 1, DiskUsedBytes: 5000}); err != nil {
		t.Fatal(err)
	}
	if got := r.Schedulable(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("schedulable = %v", got)
	}
	st := r.Nodes()
	if !st[1].Over {
		t.Fatalf("d2 status not over watermark: %+v", st[1])
	}
	// Disk freed: next heartbeat releases the latch.
	if err := r.Heartbeat(HeartbeatBody{Node: "d2", Seq: 2, DiskUsedBytes: 100}); err != nil {
		t.Fatal(err)
	}
	if got := r.Schedulable(); len(got) != 2 {
		t.Fatalf("schedulable = %v", got)
	}
}
