package fleet_test

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// chaosSeed reruns the fleet chaos suite with one specific seed:
//
//	go test ./internal/fleet/ -run TestChaosFleetSeeds -chaos.seed=23 -v
var chaosSeed = flag.Int64("chaos.seed", 0, "run the fleet chaos suite with this single seed only")

// chaosSeeds is the fixed CI seed set, shared with the server chaos
// suite so a failure is reproducible bit for bit.
var chaosSeeds = []int64{11, 23, 37, 41, 59, 67, 73, 89, 97, 103}

func TestChaosFleetSeeds(t *testing.T) {
	seeds := chaosSeeds
	if *chaosSeed != 0 {
		seeds = []int64{*chaosSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Seeds share nothing (each builds its own netsim fabric,
			// injector, and master); run them in parallel so the suite's
			// wall-clock is the slowest seed, not the sum.
			t.Parallel()
			runFleetChaos(t, seed)
		})
	}
}

// landings counts per-(naplet, server) landings — the exactly-once probe.
// Each landing also records its hop context, so a duplicate is
// diagnosable post-mortem (same hop = a replayed transfer; different
// hops = a forked naplet touring twice).
type landings struct {
	mu     sync.Mutex
	m      map[string]int
	detail map[string][]string
}

func (l *landings) inc(ctx *naplet.Context) {
	key := ctx.NapletID().String() + "@" + ctx.Server
	hop, rem := -1, "?"
	if ctx.Record.Log != nil {
		hop = ctx.Record.Log.Len()
	}
	if ctx.Record.Itin != nil {
		rem = fmt.Sprint(ctx.Record.Itin.Remaining)
	}
	d := fmt.Sprintf("hop=%d rem=%s at=%s",
		hop, rem, time.Now().Format("15:04:05.000000"))
	l.mu.Lock()
	l.m[key]++
	l.detail[key] = append(l.detail[key], d)
	l.mu.Unlock()
}

func (l *landings) doubles() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for k, n := range l.m {
		if n > 1 {
			out = append(out, fmt.Sprintf("%s landed %d times: %s",
				k, n, strings.Join(l.detail[k], " | ")))
		}
	}
	return out
}

// runFleetChaos drives one launch wave through a faulty fabric while one
// dock crash-kills mid-wave, and asserts the control-plane invariants:
//
//  1. the master marks the crashed dock dead from missed heartbeats;
//  2. its unfinished launches are rescheduled and the wave completes —
//     every assignment terminal, none failed;
//  3. landings stay exactly-once per (naplet, server): reschedules are
//     new naplet identities, never replays;
//  4. a deliberately slow event subscriber is dropped without stalling
//     the broadcaster, the wave, or a healthy subscriber.
func runFleetChaos(t *testing.T, seed int64) {
	t.Helper()
	reg := telemetry.NewRegistry()
	inj := fault.New(fault.Config{
		Seed: seed,
		P: fault.Probabilities{
			DropRequest: 0.04,
			DropReply:   0.03,
			Duplicate:   0.04,
			Delay:       0.03,
		},
		DelaySpike: 100 * time.Microsecond,
		// Owner reports stay reliable (the observation channel), as in
		// the server chaos suite.
		Kinds:     func(k wire.Kind) bool { return k != wire.KindReport },
		Telemetry: reg,
	})
	net := netsim.New(netsim.Config{})
	fabric := inj.Fabric(net)

	land := &landings{m: make(map[string]int), detail: make(map[string][]string)}
	codebases := registry.New()
	codebases.MustRegister(&registry.Codebase{
		Name: "chaos.Recorder",
		New: func() naplet.Behavior {
			return &recorder{land: land}
		},
	})

	const heartbeat = 25 * time.Millisecond
	master, err := fleet.NewMaster(fleet.Config{
		Name:           "m",
		Fabric:         fabric,
		HeartbeatEvery: heartbeat,
		StatusPoll:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	dockNames := []string{"d1", "d2", "d3", "d4"}
	for _, name := range dockNames {
		srv, err := server.New(server.Config{
			Name:               name,
			Fabric:             fabric,
			Registry:           codebases,
			Telemetry:          reg,
			DispatchRetries:    200,
			DispatchRetryDelay: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		ag, err := fleet.NewAgent(fleet.AgentConfig{
			Node:           srv.Node(),
			Master:         "m",
			HeartbeatEvery: heartbeat,
			FlushEvery:     10 * time.Millisecond,
			Stats: func() fleet.NodeStats {
				return fleet.NodeStats{Residents: srv.Manager().Resident()}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetEventSink(func(e server.Event) { ag.Publish(fleet.NavEvent(e)) })
		srv.Tracer().SetSink(func(sp telemetry.HopSpan) { ag.Publish(fleet.SpanEvent(sp)) })
		ag.Run()
		t.Cleanup(ag.Close)
	}
	waitRegistered(t, master, len(dockNames))

	// A deliberately slow subscriber (tiny ring, never polled during the
	// wave) and a healthy one.
	slow := master.Broadcaster().Subscribe(4, fleet.DropSlow)
	healthy := master.Broadcaster().Subscribe(4096, fleet.DropSlow)

	// The wave: routes crossing all four docks, enough launches that d3
	// holds work when it dies.
	spec := fleet.WaveSpec{
		Name:       fmt.Sprintf("chaos-%d", seed),
		Count:      3,
		Routes:     []string{"seq(d1,d2)", "seq(d2,d4)", "seq(d3,d1)", "seq(d4,d3)"},
		Codebase:   "chaos.Recorder",
		Failover:   "skip",
		PerNodeCap: 2,
		Retries:    4,
		// A naplet resident on the crashed dock keeps running but cannot
		// migrate or report; its assignment rides out this timeout before
		// rescheduling. Keep it short — healthy tours finish in ms.
		WaitTimeout: 10 * time.Second,
	}
	type waveOut struct {
		res *fleet.WaveResult
		err error
	}
	waveDone := make(chan waveOut, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	go func() {
		res, err := master.Wave(ctx, spec)
		waveDone <- waveOut{res, err}
	}()

	// Crash-kill d3 once the wave is visibly under way (a few landings
	// recorded): calls from and to it fail, its heartbeats stop, and the
	// master must walk it to dead and reroute its pending launches.
	waitLandings(t, land, 3)
	inj.Crash("d3")

	var out waveOut
	select {
	case out = <-waveDone:
	case <-time.After(100 * time.Second):
		t.Fatal("wave never finished")
	}
	if out.err != nil {
		t.Fatalf("wave error: %v", out.err)
	}
	res := out.res
	if res.Completed != res.Total || res.Failed != 0 {
		for _, l := range res.Launches {
			if l.Status != "completed" {
				t.Logf("launch %d at %s: %s (%s)", l.Index, l.Node, l.Status, l.Err)
			}
		}
		t.Fatalf("wave = %d/%d completed, %d failed, %d rescheduled",
			res.Completed, res.Total, res.Failed, res.Rescheduled)
	}
	// The crashed dock is dead in the master's books.
	if !master.Health().Dead("d3") {
		t.Fatalf("d3 not presumed dead; state = %v", master.Health().State("d3"))
	}
	if res.PerNode["d3"] != 0 {
		// d3 may have completed launches before the crash — but only
		// before. Completed-at-d3 entries must predate the crash, which
		// we can't timestamp here; what must hold is that every launch
		// completed and landed exactly once (checked below).
		t.Logf("d3 completed %d launches before the crash", res.PerNode["d3"])
	}

	// Exactly-once landings, wave-wide: no (naplet, server) pair saw a
	// second landing. Rescheduled launches carry fresh naplet IDs, so a
	// replayed assignment shows up here as a double landing.
	if doubles := land.doubles(); len(doubles) > 0 {
		t.Fatalf("duplicate landings:\n%s", strings.Join(doubles, "\n"))
	}

	// The slow subscriber overflowed its 4-slot ring and was dropped —
	// ingest and the healthy subscriber never stalled.
	if master.Broadcaster().Published() <= 4 {
		t.Fatalf("only %d events published", master.Broadcaster().Published())
	}
	if _, _, err := master.Broadcaster().Poll(slow, 0); err == nil {
		t.Fatal("slow subscriber survived a full wave without polling")
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got == 0 {
		evs, _, err := master.Broadcaster().Poll(healthy, 0)
		if err != nil {
			t.Fatalf("healthy subscriber: %v", err)
		}
		got += len(evs)
		if time.Now().After(deadline) {
			t.Fatal("healthy subscriber saw no events")
		}
	}
}

// recorder is the chaos probe behavior: every landing increments the
// shared per-(naplet, server) count, and the tour reports home.
type recorder struct {
	land *landings
}

func (r *recorder) OnStart(ctx *naplet.Context) error {
	r.land.inc(ctx)
	var tour []string
	ctx.State().Load("tour", &tour)
	tour = append(tour, ctx.Server)
	return ctx.State().SetPrivate("tour", tour)
}

func (r *recorder) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(tour, " -> ")))
}

func waitRegistered(t *testing.T, m *fleet.Master, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.Registry().Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d docks registered", m.Registry().Len(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitLandings(t *testing.T, l *landings, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		l.mu.Lock()
		total := len(l.m)
		l.mu.Unlock()
		if total >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d landings before crash window", total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
