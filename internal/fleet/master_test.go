package fleet_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// tourist visits servers appending each name to its tour, reporting the
// tour when it dies — the landing trail doubles as an exactly-once probe.
type tourist struct{}

func (tourist) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	tour = append(tour, ctx.Server)
	return ctx.State().SetPrivate("tour", tour)
}

func (tourist) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(tour, " -> ")))
}

func newFleetRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name: "test.Tourist",
		New:  func() naplet.Behavior { return tourist{} },
	})
	return reg
}

// testFleet is a master plus N agent-wired docks on one netsim fabric.
type testFleet struct {
	net    *netsim.Network
	master *fleet.Master
	docks  map[string]*server.Server
	agents map[string]*fleet.Agent
}

func newTestFleet(t *testing.T, masterCfg fleet.Config, docks ...string) *testFleet {
	t.Helper()
	tf := &testFleet{
		net:    netsim.New(netsim.Config{}),
		docks:  make(map[string]*server.Server),
		agents: make(map[string]*fleet.Agent),
	}
	reg := newFleetRegistry(t)
	masterCfg.Fabric = tf.net
	if masterCfg.Name == "" {
		masterCfg.Name = "m"
	}
	if masterCfg.HeartbeatEvery <= 0 {
		masterCfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if masterCfg.StatusPoll <= 0 {
		masterCfg.StatusPoll = 5 * time.Millisecond
	}
	m, err := fleet.NewMaster(masterCfg)
	if err != nil {
		t.Fatal(err)
	}
	tf.master = m
	t.Cleanup(func() { m.Close() })
	for _, name := range docks {
		srv, err := server.New(server.Config{Name: name, Fabric: tf.net, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		tf.docks[name] = srv
		t.Cleanup(func() { srv.Close() })
		ag, err := fleet.NewAgent(fleet.AgentConfig{
			Node:   srv.Node(),
			Master: masterCfg.Name,
			Stats: func() fleet.NodeStats {
				return fleet.NodeStats{
					Residents: srv.Manager().Resident(),
					Draining:  srv.Draining(),
				}
			},
			HeartbeatEvery: masterCfg.HeartbeatEvery,
			FlushEvery:     10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetEventSink(func(e server.Event) { ag.Publish(fleet.NavEvent(e)) })
		srv.Tracer().SetSink(func(sp telemetry.HopSpan) { ag.Publish(fleet.SpanEvent(sp)) })
		tf.agents[name] = ag
		ag.Run()
		t.Cleanup(ag.Close)
	}
	return tf
}

// waitNodes blocks until the master sees n registered nodes.
func (tf *testFleet) waitNodes(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tf.master.Registry().Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d nodes registered", tf.master.Registry().Len(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMasterRegistrationAndNodesOverWire(t *testing.T) {
	tf := newTestFleet(t, fleet.Config{}, "d1", "d2", "d3")
	tf.waitNodes(t, 3)

	// Operator node listing over the fleet protocol.
	ctl, err := tf.net.Attach("ctl", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	f, err := wire.NewFrame(wire.KindFleetNodes, "ctl", "m", fleet.NodesBody{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ctl.Call(context.Background(), "m", f)
	if err != nil {
		t.Fatal(err)
	}
	var rb fleet.NodesReplyBody
	if err := resp.Body(&rb); err != nil {
		t.Fatal(err)
	}
	if len(rb.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(rb.Nodes))
	}
	for i, want := range []string{"d1", "d2", "d3"} {
		n := rb.Nodes[i]
		if n.Name != want || n.State != "alive" {
			t.Fatalf("node %d = %+v", i, n)
		}
	}
}

func TestMasterWaveLaunchesAcrossFleet(t *testing.T) {
	tf := newTestFleet(t, fleet.Config{}, "d1", "d2", "d3")
	tf.waitNodes(t, 3)

	sub := tf.master.Broadcaster().SubscribeDefault()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := tf.master.Wave(ctx, fleet.WaveSpec{
		Name:     "smoke",
		Count:    2,
		Routes:   []string{"seq(d1,d2)", "seq(d2,d3)"},
		Codebase: "test.Tourist",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 4 || res.Completed != 4 || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	wantTours := map[string]string{"seq(d1,d2)": "d1 -> d2", "seq(d2,d3)": "d2 -> d3"}
	for _, l := range res.Launches {
		if l.Result != wantTours[l.Route] {
			t.Fatalf("launch %d tour = %q, want %q", l.Index, l.Result, wantTours[l.Route])
		}
	}

	// The nav-log events streamed to the master: every launch produced
	// launch/arrival/complete events with the node stamped.
	deadline := time.Now().Add(5 * time.Second)
	kinds := map[string]int{}
	for {
		evs, _, err := tf.master.Broadcaster().Poll(sub, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.Node == "" {
				t.Fatalf("event without node: %+v", ev)
			}
			kinds[ev.Kind]++
		}
		if kinds[fleet.EventComplete] >= 4 && kinds[fleet.EventLaunch] >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("event stream incomplete: %v", kinds)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if kinds[fleet.EventArrival] == 0 {
		t.Fatalf("no arrival events: %v", kinds)
	}
}

func TestMasterWaveOverWire(t *testing.T) {
	tf := newTestFleet(t, fleet.Config{}, "d1", "d2")
	tf.waitNodes(t, 2)
	ctl, err := tf.net.Attach("ctl", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	f, err := wire.NewFrame(wire.KindFleetWave, "ctl", "m", fleet.WaveBody{Spec: fleet.WaveSpec{
		Count:    1,
		Routes:   []string{"seq(d1,d2)"},
		Codebase: "test.Tourist",
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := ctl.Call(ctx, "m", f)
	if err != nil {
		t.Fatal(err)
	}
	var rb fleet.WaveReplyBody
	if err := resp.Body(&rb); err != nil {
		t.Fatal(err)
	}
	if !rb.OK || rb.Result == nil || rb.Result.Completed != 1 {
		t.Fatalf("wave reply = %+v (result %+v)", rb, rb.Result)
	}
}

func TestMasterSubscribeOverWire(t *testing.T) {
	tf := newTestFleet(t, fleet.Config{}, "d1")
	tf.waitNodes(t, 1)
	ctl, err := tf.net.Attach("ctl", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	subscribe := func(body *fleet.SubscribeBody) fleet.SubscribeReplyBody {
		t.Helper()
		f := wire.BinaryFrame(wire.KindFleetSubscribe, "ctl", "m", body)
		resp, err := ctl.Call(context.Background(), "m", f)
		if err != nil {
			t.Fatal(err)
		}
		var rb fleet.SubscribeReplyBody
		if err := rb.Decode(resp.Payload); err != nil {
			t.Fatal(err)
		}
		return rb
	}
	created := subscribe(&fleet.SubscribeBody{})
	if created.ID == "" {
		t.Fatalf("no subscription id: %+v", created)
	}
	// Run a tiny wave so events flow.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := tf.master.Wave(ctx, fleet.WaveSpec{
		Count: 1, Routes: []string{"seq(d1)"}, Codebase: "test.Tourist",
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	total := 0
	for total == 0 {
		rb := subscribe(&fleet.SubscribeBody{ID: created.ID})
		if rb.Closed || rb.Err != "" {
			t.Fatalf("poll reply = %+v", rb)
		}
		total += len(rb.Events)
		if time.Now().After(deadline) {
			t.Fatal("no events over wire subscription")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMasterMarksSilentNodeDeadAndThrottleSignal(t *testing.T) {
	tf := newTestFleet(t, fleet.Config{
		Watchdog: fleet.WatchdogConfig{DiskWatermarkBytes: 1000},
	}, "d1", "d2")
	tf.waitNodes(t, 2)

	// Stop d2's agent: heartbeats cease and the liveness sweep walks it
	// to dead within a few intervals.
	tf.agents["d2"].Close()
	deadline := time.Now().Add(5 * time.Second)
	for !tf.master.Registry().Dead("d2") {
		if time.Now().After(deadline) {
			t.Fatal("silent node never marked dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tf.master.Registry().Dead("d1") {
		t.Fatal("live node marked dead")
	}
	if got := tf.master.Registry().Schedulable(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("schedulable = %v", got)
	}

	// Watchdog: a heartbeat reporting disk over the watermark flips the
	// throttle signal served back to that node.
	tf.master.Watchdog().ObserveDisk("d1", 5000)
	if got := tf.master.Registry().Schedulable(); len(got) != 0 {
		t.Fatalf("over-watermark node still schedulable: %v", got)
	}
}
