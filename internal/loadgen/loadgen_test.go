package loadgen

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"
)

// checkGoroutines wraps a test body with a goroutine-leak check: every
// goroutine the run spawns (server loops, chase senders, sweep waves)
// must drain after the testbed closes. Polled because close is
// asynchronous — workers observe shutdown at their next select.
func checkGoroutines(t *testing.T, body func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	body()
	deadline := time.Now().Add(10 * time.Second)
	var after int
	for {
		runtime.GC() // finalize dropped timers before counting
		after = runtime.NumGoroutine()
		if after <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if after > before+2 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after drain\n%s", before, after, buf[:n])
	}
}

func TestPlanDeterministic(t *testing.T) {
	prof := Profiles["short"]
	a := BuildPlan(prof, 42, true)
	b := BuildPlan(prof, 42, true)
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed, digests differ: %s vs %s", a.Digest(), b.Digest())
	}
	if c := BuildPlan(prof, 43, true); c.Digest() == a.Digest() {
		t.Fatalf("different seeds collided on digest %s", a.Digest())
	}
	if len(a.Tours) != prof.SeqTours+prof.ParTours {
		t.Fatalf("plan has %d tours, want %d", len(a.Tours), prof.SeqTours+prof.ParTours)
	}
	if len(a.Schedule) == 0 {
		t.Fatal("fault plan has no scripted schedule")
	}
	for _, s := range a.Schedule {
		if s.AfterCalls <= 0 {
			t.Fatalf("schedule step at call %d never fires", s.AfterCalls)
		}
	}
}

func TestShortProfileNetsim(t *testing.T) {
	checkGoroutines(t, func() {
		var out bytes.Buffer
		res, err := Run(context.Background(), Config{
			Profile: Profiles["short"],
			Fabric:  FabricNetsimWAN,
			Seed:    1,
			Out:     &out,
		})
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v\n%s", res.Violations, out.String())
		}
		prof := Profiles["short"]
		if res.ToursCompleted != prof.SeqTours+prof.ParTours {
			t.Fatalf("tours %d, want %d", res.ToursCompleted, prof.SeqTours+prof.ParTours)
		}
		if want := prof.Chases * prof.MsgsPerChase; res.MessagesDelivered != want {
			t.Fatalf("messages %d, want %d", res.MessagesDelivered, want)
		}
		if res.NapletBytes == 0 || res.CNMPBytes == 0 {
			t.Fatalf("sweep byte accounting missing: cnmp=%d naplet=%d", res.CNMPBytes, res.NapletBytes)
		}
		for _, key := range []string{"tours_completed", "messages_delivered", "landings", "byte_ratio", "hop_p99_ms"} {
			if _, ok := res.Metrics[key]; !ok {
				t.Errorf("metric %q missing", key)
			}
		}
	})
}

func TestShortProfileTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp rig in -short mode")
	}
	checkGoroutines(t, func() {
		var out bytes.Buffer
		res, err := Run(context.Background(), Config{
			Profile: Profiles["short"],
			Fabric:  FabricTCP,
			Seed:    1,
			Out:     &out,
		})
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v\n%s", res.Violations, out.String())
		}
		// TCP has no netsim byte accounting; work totals must still hold.
		prof := Profiles["short"]
		if res.ToursCompleted != prof.SeqTours+prof.ParTours {
			t.Fatalf("tours %d, want %d", res.ToursCompleted, prof.SeqTours+prof.ParTours)
		}
	})
}

// TestSeededFaultReplay is the chaos-style determinism contract: the same
// seed must build the same fault schedule (byte-identical plan digest),
// and the run must reconcile exactly-once delivery through the injected
// crash, partition, drop and duplicate faults.
func TestSeededFaultReplay(t *testing.T) {
	run := func() (*Result, string) {
		var out bytes.Buffer
		res, err := Run(context.Background(), Config{
			Profile: Profiles["short"],
			Fabric:  FabricNetsimLAN,
			Seed:    7,
			Faults:  true,
			Out:     &out,
		})
		if err != nil {
			t.Fatalf("fault run: %v\n%s", err, out.String())
		}
		if len(res.Violations) != 0 {
			t.Fatalf("fault run violations: %v\n%s", res.Violations, out.String())
		}
		return res, out.String()
	}
	checkGoroutines(t, func() {
		a, _ := run()
		b, _ := run()
		if a.PlanDigest != b.PlanDigest {
			t.Fatalf("replay digest drifted: %s vs %s", a.PlanDigest, b.PlanDigest)
		}
		// Work totals are part of the exactly-once contract and must
		// replay exactly even though fault timing interleaves differently.
		for _, key := range []string{"tours_completed", "messages_delivered", "landings"} {
			if a.Metrics[key] != b.Metrics[key] {
				t.Errorf("replay %s drifted: %v vs %v", key, a.Metrics[key], b.Metrics[key])
			}
		}
	})
}

func TestFaultsRejectedOnTCP(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Profile: Profiles["short"],
		Fabric:  FabricTCP,
		Faults:  true,
	})
	if err == nil {
		t.Fatal("faults on TCP should be rejected")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	res := &Result{
		Profile: "short", Fabric: FabricNetsimWAN, Seed: 1, PlanDigest: "abc",
		Metrics: map[string]float64{
			"tours_completed": 28, "byte_ratio": 2.5, "elapsed_ms": 1234,
		},
	}
	b := NewBaseline(res)
	path := t.TempDir() + "/BENCH_loadgen.json"
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if fails := got.Check(res); len(fails) != 0 {
		t.Fatalf("self-check failed: %v", fails)
	}
	// A collapsed byte ratio must trip the gate; elapsed time must not.
	worse := &Result{PlanDigest: "abc", Metrics: map[string]float64{
		"tours_completed": 28, "byte_ratio": 1.0, "elapsed_ms": 99999,
	}}
	fails := got.Check(worse)
	if len(fails) != 1 {
		t.Fatalf("want exactly the byte_ratio failure, got %v", fails)
	}
	// A drifted plan digest is its own failure.
	if fails := got.Check(&Result{PlanDigest: "zzz", Metrics: res.Metrics}); len(fails) != 1 {
		t.Fatalf("want digest failure, got %v", fails)
	}
}
