package loadgen

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// shortOverload shrinks the preset's phases so the test proves the rig
// end to end in well under a second per fabric.
func shortOverload() Profile {
	prof := Profiles["overload"]
	spec := *prof.Overload
	spec.Phase = 400 * time.Millisecond
	prof.Overload = &spec
	return prof
}

// TestOverloadProfile drives the overload scenario on both fabrics and
// holds it to its own contract: goodput floor, control-plane SLO and the
// three-way shed reconciliation all live in res.Violations, so a clean
// run is the whole proof.
func TestOverloadProfile(t *testing.T) {
	fabrics := []string{FabricNetsimLAN}
	if !testing.Short() {
		fabrics = append(fabrics, FabricTCP)
	}
	for _, fb := range fabrics {
		fb := fb
		t.Run(fb, func(t *testing.T) {
			checkGoroutines(t, func() {
				var out bytes.Buffer
				res, err := Run(context.Background(), Config{
					Profile: shortOverload(),
					Fabric:  fb,
					Seed:    1,
					Out:     &out,
				})
				if err != nil {
					t.Fatalf("run: %v\n%s", err, out.String())
				}
				if len(res.Violations) != 0 {
					t.Fatalf("violations: %v\n%s", res.Violations, out.String())
				}
				if res.Metrics["overload_shed_total"] == 0 {
					t.Fatalf("no sheds recorded — the rig never overloaded\n%s", out.String())
				}
				if res.Metrics["overload_goodput_ratio"] < 0.7 {
					t.Fatalf("goodput ratio %.2f below floor\n%s", res.Metrics["overload_goodput_ratio"], out.String())
				}
				for _, key := range []string{"overload_capacity_per_sec", "overload_goodput_per_sec", "control_p99_ms"} {
					if _, ok := res.Metrics[key]; !ok {
						t.Errorf("metric %q missing", key)
					}
				}
			})
		})
	}
}

// TestOverloadRejectsFaults: the overload profile makes its own weather;
// the seeded injector belongs to the testbed profiles.
func TestOverloadRejectsFaults(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Profile: Profiles["overload"],
		Fabric:  FabricNetsimLAN,
		Faults:  true,
	})
	if err == nil {
		t.Fatal("faults on the overload profile should be rejected")
	}
}
