package loadgen

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/id"
	"repro/internal/naplet"
	"repro/internal/registry"
)

// Codebase names of the load-generation agents.
const (
	TourCodebase   = "loadgen.Tour"
	MoverCodebase  = "loadgen.Mover"
	SenderCodebase = "loadgen.Sender"
)

// State keys.
const (
	visitedKey = "loadgen.visited"
	expectKey  = "loadgen.expect"
	gotKey     = "loadgen.got"
	targetKey  = "loadgen.target"
	countKey   = "loadgen.count"
	paceKey    = "loadgen.paceMs"
	hintKey    = "loadgen.hint"
)

// RegisterCodebases registers the loadgen agents in reg (idempotent per
// registry; a second registration errors and is reported).
func RegisterCodebases(reg *registry.Registry) error {
	for _, cb := range []*registry.Codebase{
		{Name: TourCodebase, New: func() naplet.Behavior { return tourAgent{} }},
		{Name: MoverCodebase, New: func() naplet.Behavior { return moverAgent{} }},
		{Name: SenderCodebase, New: func() naplet.Behavior { return senderAgent{} }},
	} {
		if err := reg.Register(cb); err != nil {
			return err
		}
	}
	return nil
}

// tourAgent appends every server it lands on to its state and reports the
// full trace on destruction. A lost hop, a double landing, or a ghost
// clone corrupts the trace — the harness diffs it against the plan.
type tourAgent struct{}

func (tourAgent) OnStart(ctx *naplet.Context) error {
	var visited []string
	ctx.State().Load(visitedKey, &visited) // absent on the first visit
	visited = append(visited, ctx.Server)
	return ctx.State().SetPrivate(visitedKey, visited)
}

func (tourAgent) OnDestroy(ctx *naplet.Context) {
	var visited []string
	ctx.State().Load(visitedKey, &visited)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(visited, ",")))
}

// moverAgent drains its mailbox at every stop until it has received
// `expect` messages across the whole tour, then reports "count:subjects".
// The chase-storm invariant: every subject exactly once, however many
// forwarding hops the post office needed to catch the mover mid-flight.
type moverAgent struct{}

func (moverAgent) OnStart(ctx *naplet.Context) error {
	var expect int
	if err := ctx.State().Load(expectKey, &expect); err != nil {
		return err
	}
	var got []string
	ctx.State().Load(gotKey, &got) // absent on the first visit
	last := ctx.Itinerary().Done()
	deadline := time.After(20 * time.Millisecond)
	for {
		if last && len(got) >= expect {
			break
		}
		if msg, ok := ctx.Messenger.TryReceive(); ok {
			got = append(got, msg.Subject)
			continue
		}
		if last {
			msg, err := ctx.Messenger.Receive(ctx.Cancel)
			if err != nil {
				return err
			}
			got = append(got, msg.Subject)
			continue
		}
		select {
		case <-deadline:
			return ctx.State().SetPrivate(gotKey, got)
		case <-time.After(time.Millisecond):
		}
	}
	return ctx.State().SetPrivate(gotKey, got)
}

func (moverAgent) OnDestroy(ctx *naplet.Context) {
	var got []string
	ctx.State().Load(gotKey, &got)
	body := fmt.Sprintf("%d:%s", len(got), strings.Join(got, ","))
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(body))
}

// senderAgent posts `count` uniquely-tagged messages at its target,
// retrying transient routing failures — the target is mid-flight by
// design, so the first attempts race its migrations.
type senderAgent struct{}

func (senderAgent) OnStart(ctx *naplet.Context) error {
	var targetStr, hint string
	var count, paceMs int
	if err := ctx.State().Load(targetKey, &targetStr); err != nil {
		return err
	}
	if err := ctx.State().Load(countKey, &count); err != nil {
		return err
	}
	ctx.State().Load(hintKey, &hint)
	ctx.State().Load(paceKey, &paceMs)
	target, err := id.Parse(targetStr)
	if err != nil {
		return err
	}
	ctx.AddressBook().Add(target, hint)
	for i := 0; i < count; i++ {
		if paceMs > 0 && i > 0 {
			select {
			case <-time.After(time.Duration(paceMs) * time.Millisecond):
			case <-ctx.Cancel.Done():
				return ctx.Cancel.Err()
			}
		}
		subject := fmt.Sprintf("m%d", i)
		for attempt := 0; ; attempt++ {
			err := ctx.Messenger.Post(ctx.Cancel, target, subject, nil)
			if err == nil {
				break
			}
			if attempt > 80 {
				return fmt.Errorf("loadgen sender: message %s undeliverable: %w", subject, err)
			}
			select {
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Cancel.Done():
				return ctx.Cancel.Err()
			}
		}
	}
	return nil
}
