package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// OverloadSpec sizes the overload-resilience scenario: a single dock
// whose handler runs behind a prioritized admission gate, driven first
// at capacity and then at Multiple times capacity by closed-loop
// clients with budgeted retries, while a control-plane prober measures
// whether control traffic ever queues behind bulk. The run passes when
// overload-phase goodput holds GoodputFloor of measured capacity, the
// control p99 holds its SLO, and every shed reconciles three ways:
// client-observed typed errors == gate accounting == telemetry.
type OverloadSpec struct {
	// Workers is the capacity-phase closed-loop client count; size it
	// to MaxInFlight so phase 1 saturates the dock without queueing.
	Workers int
	// Work is the bulk service time at the dock.
	Work time.Duration
	// Multiple scales Workers for the overload phase (the tentpole
	// claim is 2x sustained overload).
	Multiple int
	// Phase is the duration of each phase.
	Phase time.Duration
	// MaxInFlight, MaxQueue and MaxWait size the dock's gate.
	MaxInFlight int
	MaxQueue    int
	MaxWait     time.Duration
	// ControlInterval is the control prober's firing period during the
	// overload phase.
	ControlInterval time.Duration
	// GoodputFloor is the overload-phase goodput requirement as a
	// fraction of the capacity phase's measured goodput.
	GoodputFloor float64
	// ControlP99 bounds the control-plane round trip p99 under
	// overload. MaxWait is deliberately far above this bound: control
	// queuing behind bulk would blow the SLO, not hide inside it.
	ControlP99 time.Duration
}

// overloadCounts is one phase's client-side ledger. The reconciliation
// sums both phases and holds the totals against the gate's own books.
type overloadCounts struct {
	attempts     atomic.Int64 // bulk frames put on the wire
	success      atomic.Int64 // confirmed replies (goodput)
	shedOverload atomic.Int64 // typed ErrOverloaded replies
	shedDeadline atomic.Int64 // typed ErrDeadlinePast replies
	giveups      atomic.Int64 // jobs abandoned by the retry budget
	other        atomic.Int64 // untyped failures (always a violation)
}

// runOverload executes the overload-resilience scenario in place of the
// testbed phases. It shares Run's contract: Violations mean the run
// failed its objectives, err means the harness itself broke.
func runOverload(ctx context.Context, cfg Config) (*Result, error) {
	prof := cfg.Profile
	spec := prof.Overload
	if cfg.Faults {
		return nil, fmt.Errorf("loadgen: the overload profile injects its own load; -faults applies to the testbed profiles")
	}
	plan := BuildPlan(prof, cfg.Seed, false)
	res := &Result{
		Profile:    prof.Name,
		Fabric:     cfg.Fabric,
		Seed:       cfg.Seed,
		PlanDigest: plan.Digest(),
		Metrics:    map[string]float64{},
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, prof.Timeout)
	defer cancel()

	reg := telemetry.NewRegistry()
	var fab transport.Fabric
	addr := func(name string) string { return name }
	switch cfg.Fabric {
	case FabricNetsimLAN, FabricNetsimWAN:
		link := netsim.LAN
		if cfg.Fabric == FabricNetsimWAN {
			link = netsim.WAN
		}
		fab = netsim.New(netsim.Config{
			DefaultLink: link,
			TimeScale:   0,
			Seed:        cfg.Seed,
			CallTimeout: 10 * time.Second,
		})
	case FabricTCP:
		tf := transport.NewTCPFabric()
		tf.Instrument(reg)
		fab = tf
		addr = func(string) string { return "127.0.0.1:0" }
	default:
		return nil, fmt.Errorf("loadgen: unknown fabric %q", cfg.Fabric)
	}

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// The dock: bulk work runs behind the gate for Work; control is
	// answered immediately after (ungated) admission, exactly as the
	// server's dispatch path orders it.
	gate := overload.NewGate(overload.GateConfig{
		MaxInFlight: spec.MaxInFlight,
		MaxQueue:    spec.MaxQueue,
		MaxWait:     spec.MaxWait,
		MaxTrail:    1 << 15,
		Telemetry:   reg,
	})
	dockHandler := func(from string, f wire.Frame) (wire.Frame, error) {
		hctx, hcancel := f.BudgetContext(context.Background())
		release, err := gate.Admit(hctx, overload.Classify(f.Kind))
		hcancel()
		if err != nil {
			return wire.Frame{}, err
		}
		defer release()
		switch f.Kind {
		case wire.KindPost:
			time.Sleep(spec.Work)
			return wire.Frame{Kind: wire.KindPostConfirm, From: f.To, To: f.From}, nil
		case wire.KindLocatorQuery:
			return wire.Frame{Kind: wire.KindLocatorReply, From: f.To, To: f.From}, nil
		default:
			return wire.Frame{}, fmt.Errorf("overload rig: unexpected kind %q", f.Kind)
		}
	}
	noCalls := func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, fmt.Errorf("overload rig: client node called")
	}
	dock, err := fab.Attach(addr("dock"), dockHandler)
	if err != nil {
		return nil, fmt.Errorf("loadgen: attach dock: %w", err)
	}
	defer dock.Close()
	bulkNode, err := fab.Attach(addr("lg-bulk"), noCalls)
	if err != nil {
		return nil, fmt.Errorf("loadgen: attach bulk client: %w", err)
	}
	defer bulkNode.Close()
	// The prober gets its own node (own mux connection on TCP) so the
	// control-plane measurement never shares a write path with bulk.
	ctlNode, err := fab.Attach(addr("lg-ctl"), noCalls)
	if err != nil {
		return nil, fmt.Errorf("loadgen: attach control client: %w", err)
	}
	defer ctlNode.Close()
	dockAddr := dock.Addr()

	budget := overload.NewRetryBudget(overload.RetryBudgetConfig{
		Ratio: 0.2, Burst: 10, Name: "loadgen", Telemetry: reg,
	})
	ctlHist := reg.Histogram("naplet_loadgen_control_rtt_seconds",
		"control-plane probe round trips during the overload phase",
		telemetry.LatencyBuckets)

	// drive runs one closed-loop phase: workers jobs with budgeted,
	// backed-off retries until the phase clock expires.
	drive := func(workers int, counts *overloadCounts) {
		stop := make(chan struct{})
		timer := time.AfterFunc(spec.Phase, func() { close(stop) })
		defer timer.Stop()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case <-ctx.Done():
						return
					default:
					}
					budget.RecordAttempt()
					delay := time.Millisecond
					for {
						cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
						_, err := bulkNode.Call(cctx, dockAddr, wire.Frame{Kind: wire.KindPost, Payload: []byte("job")})
						ccancel()
						counts.attempts.Add(1)
						if err == nil {
							counts.success.Add(1)
							break
						}
						switch {
						case errors.Is(err, overload.ErrDeadlinePast):
							counts.shedDeadline.Add(1)
						case errors.Is(err, overload.ErrOverloaded):
							counts.shedOverload.Add(1)
						default:
							counts.other.Add(1)
							return
						}
						select {
						case <-stop:
							return
						case <-ctx.Done():
							return
						default:
						}
						if !budget.AllowRetry() {
							counts.giveups.Add(1)
							break
						}
						time.Sleep(delay)
						if delay *= 2; delay > 4*time.Millisecond {
							delay = 4 * time.Millisecond
						}
					}
				}
			}()
		}
		wg.Wait()
	}

	fmt.Fprintf(cfg.Out, "loadgen %s/%s seed=%d plan=%s\n",
		prof.Name, cfg.Fabric, cfg.Seed, res.PlanDigest)
	fmt.Fprintf(cfg.Out, "phase capacity: %d workers, %s work, %d slots, %s\n",
		spec.Workers, spec.Work, spec.MaxInFlight, spec.Phase)
	var capacity, over overloadCounts
	drive(spec.Workers, &capacity)

	fmt.Fprintf(cfg.Out, "phase overload: %dx workers (%d), control probe every %s\n",
		spec.Multiple, spec.Workers*spec.Multiple, spec.ControlInterval)
	var (
		proberWG    sync.WaitGroup
		proberStop  = make(chan struct{})
		proberCalls int64
		proberErrs  int64
	)
	proberWG.Add(1)
	go func() {
		defer proberWG.Done()
		tick := time.NewTicker(spec.ControlInterval)
		defer tick.Stop()
		for {
			select {
			case <-proberStop:
				return
			case <-ctx.Done():
				return
			case <-tick.C:
			}
			cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
			t0 := time.Now()
			_, err := ctlNode.Call(cctx, dockAddr, wire.Frame{Kind: wire.KindLocatorQuery, Payload: []byte("probe")})
			ccancel()
			proberCalls++
			if err != nil {
				proberErrs++
				continue
			}
			ctlHist.ObserveDuration(time.Since(t0))
		}
	}()
	drive(spec.Workers*spec.Multiple, &over)
	close(proberStop)
	proberWG.Wait()

	if ctx.Err() != nil {
		return res, fmt.Errorf("loadgen: overload run timed out: %w", ctx.Err())
	}

	// --- Objectives ---
	capRate := float64(capacity.success.Load()) / spec.Phase.Seconds()
	overRate := float64(over.success.Load()) / spec.Phase.Seconds()
	ratio := 0.0
	if capRate > 0 {
		ratio = overRate / capRate
	} else {
		violate("capacity phase completed zero jobs")
	}
	if ratio < spec.GoodputFloor {
		violate("overload goodput %.0f/s is %.2f of capacity %.0f/s (floor %.2f) — shedding is collapsing goodput instead of protecting it",
			overRate, ratio, capRate, spec.GoodputFloor)
	}
	st := gate.Stats()
	if st.TotalShed() == 0 {
		violate("overload phase shed nothing — the rig is not saturating the gate")
	}
	if proberErrs > 0 {
		violate("%d/%d control probes failed — control must never be shed", proberErrs, proberCalls)
	}
	res.SLOs, _ = reg.CheckSLOs([]telemetry.SLO{{
		Name:     "control-rtt-p99",
		Series:   "naplet_loadgen_control_rtt_seconds",
		Quantile: 0.99,
		Max:      spec.ControlP99.Seconds(),
	}})
	for _, s := range res.SLOs {
		if s.Violated {
			violate("SLO %s", s.String())
		}
	}

	// --- Three-way shed reconciliation: clients vs gate vs telemetry ---
	if st.InFlight != 0 || st.Queued != 0 {
		violate("gate not quiesced after the run: %+v", st)
	}
	if st.ControlArrivals != st.ControlAdmitted {
		violate("control arrivals %d != admitted %d — control was shed", st.ControlArrivals, st.ControlAdmitted)
	}
	if st.BulkArrivals != st.BulkAdmitted+st.TotalShed() {
		violate("gate accounting leak: bulk arrivals %d != admitted %d + shed %d",
			st.BulkArrivals, st.BulkAdmitted, st.TotalShed())
	}
	attempts := capacity.attempts.Load() + over.attempts.Load()
	success := capacity.success.Load() + over.success.Load()
	shedOver := capacity.shedOverload.Load() + over.shedOverload.Load()
	shedDead := capacity.shedDeadline.Load() + over.shedDeadline.Load()
	if n := capacity.other.Load() + over.other.Load(); n != 0 {
		violate("%d bulk calls failed with untyped errors", n)
	}
	if attempts != st.BulkArrivals {
		violate("clients sent %d bulk frames, gate saw %d arrive", attempts, st.BulkArrivals)
	}
	if success != st.BulkAdmitted {
		violate("clients confirmed %d jobs, gate admitted %d", success, st.BulkAdmitted)
	}
	if wantOver := st.TotalShed() - st.Shed[overload.ReasonBudgetExpired]; shedOver != wantOver {
		violate("clients observed %d ErrOverloaded, gate shed %d retryably", shedOver, wantOver)
	}
	if wantDead := st.Shed[overload.ReasonBudgetExpired]; shedDead != wantDead {
		violate("clients observed %d ErrDeadlinePast, gate expired %d budgets", shedDead, wantDead)
	}
	for _, reason := range overload.ShedReasons {
		met := reg.Counter("naplet_overload_shed_total",
			"requests shed by the admission gate",
			"class", overload.ClassBulk.String(), "reason", reason)
		if met.Value() != st.Shed[reason] {
			violate("shed %s: telemetry=%d gate=%d", reason, met.Value(), st.Shed[reason])
		}
	}
	for class, want := range map[overload.Class]int64{
		overload.ClassControl: st.ControlAdmitted,
		overload.ClassBulk:    st.BulkAdmitted,
	} {
		met := reg.Counter("naplet_overload_admitted_total",
			"requests admitted by the gate", "class", class.String())
		if met.Value() != want {
			violate("admitted %s: telemetry=%d gate=%d", class, met.Value(), want)
		}
	}
	if proberCalls != st.ControlArrivals {
		violate("prober fired %d probes, gate saw %d control arrivals", proberCalls, st.ControlArrivals)
	}
	// The shed trail is the injector-trail analogue: every shed event,
	// accounted one by one.
	if got := int64(len(gate.Trail())) + gate.TrailDropped(); got != st.TotalShed() {
		violate("shed trail %d + dropped %d != shed %d", len(gate.Trail()), gate.TrailDropped(), st.TotalShed())
	}
	if gate.TrailDropped() == 0 {
		tally := map[string]int64{}
		for _, ev := range gate.Trail() {
			tally[ev.Reason]++
		}
		for _, reason := range overload.ShedReasons {
			if tally[reason] != st.Shed[reason] {
				violate("shed trail %s: trail=%d gate=%d", reason, tally[reason], st.Shed[reason])
			}
		}
	}

	res.Elapsed = time.Since(start)
	res.Metrics["overload_capacity_per_sec"] = capRate
	res.Metrics["overload_goodput_per_sec"] = overRate
	res.Metrics["overload_goodput_ratio"] = ratio
	res.Metrics["overload_shed_total"] = float64(st.TotalShed())
	res.Metrics["overload_giveups"] = float64(capacity.giveups.Load() + over.giveups.Load())
	res.Metrics["elapsed_ms"] = float64(res.Elapsed.Milliseconds())
	if sum, ok := reg.SummaryOf("naplet_loadgen_control_rtt_seconds"); ok {
		res.Metrics["control_p99_ms"] = sum.P99 * 1000
	}
	fmt.Fprintf(cfg.Out, "goodput: capacity %.0f/s, overload %.0f/s (%.2f of capacity); shed %d (%d given up)\n",
		capRate, overRate, ratio, st.TotalShed(), capacity.giveups.Load()+over.giveups.Load())
	report(cfg.Out, res)
	return res, nil
}
