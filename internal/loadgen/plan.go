package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"repro/internal/fault"
)

// Profile sizes one load-generation run. The presets in Profiles are the
// named shapes the CLI exposes; every field can still be overridden.
type Profile struct {
	// Name labels the profile in reports and baselines.
	Name string
	// Devices is the managed-device count of the testbed (each device is
	// a naplet server plus an SNMP responder).
	Devices int
	// Interfaces per simulated device.
	Interfaces int
	// SeqTours is the number of sequential tours in the mixed phase.
	SeqTours int
	// TourHops is the stops per sequential tour.
	TourHops int
	// ParTours is the number of Par fan-out launches.
	ParTours int
	// ParWidth is the branch count per Par launch.
	ParWidth int
	// Chases is the number of mover/sender chase-storm pairs.
	Chases int
	// ChaseHops is the mover's tour length.
	ChaseHops int
	// MsgsPerChase is the messages each sender fires at its mover.
	MsgsPerChase int
	// SweepVars is the per-device variable count of the §6 MAN sweep.
	SweepVars int
	// SweepRounds repeats the sweep with device workloads ticked between
	// rounds.
	SweepRounds int
	// SweepWave bounds concurrent clones per broadcast-collect wave.
	SweepWave int
	// Window bounds concurrently in-flight tour launches.
	Window int
	// Timeout bounds the whole run.
	Timeout time.Duration
	// Overload switches the run to the overload-resilience scenario
	// (see overload.go): a single gated dock driven past capacity
	// instead of the testbed phases. All testbed fields are ignored.
	Overload *OverloadSpec
}

// Profiles are the named presets: "short" is the seconds-fast CI gate,
// "mixed" sustains thousands of concurrent tours, "man-sweep" is the
// enterprise-scale §6 scenario (thousands of simulated SNMP devices).
var Profiles = map[string]Profile{
	"short": {
		Name: "short", Devices: 12, Interfaces: 4,
		SeqTours: 24, TourHops: 4, ParTours: 4, ParWidth: 4,
		Chases: 2, ChaseHops: 3, MsgsPerChase: 8,
		SweepVars: 16, SweepRounds: 1, SweepWave: 6,
		Window: 32, Timeout: 2 * time.Minute,
	},
	"mixed": {
		Name: "mixed", Devices: 64, Interfaces: 4,
		SeqTours: 2000, TourHops: 5, ParTours: 64, ParWidth: 8,
		Chases: 16, ChaseHops: 4, MsgsPerChase: 32,
		SweepVars: 24, SweepRounds: 2, SweepWave: 16,
		Window: 192, Timeout: 10 * time.Minute,
	},
	"man-sweep": {
		Name: "man-sweep", Devices: 2000, Interfaces: 4,
		SeqTours: 256, TourHops: 4, ParTours: 16, ParWidth: 8,
		Chases: 4, ChaseHops: 3, MsgsPerChase: 16,
		SweepVars: 32, SweepRounds: 1, SweepWave: 100,
		Window: 96, Timeout: 15 * time.Minute,
	},
	"overload": {
		Name: "overload", Devices: 1, Timeout: time.Minute,
		Overload: &OverloadSpec{
			Workers:         4,
			Work:            5 * time.Millisecond,
			Multiple:        2,
			Phase:           1500 * time.Millisecond,
			MaxInFlight:     4,
			MaxQueue:        4,
			MaxWait:         250 * time.Millisecond,
			ControlInterval: 5 * time.Millisecond,
			GoodputFloor:    0.7,
			ControlP99:      100 * time.Millisecond,
		},
	},
}

// tourPoolMax caps the device subset tours route over. Tour traffic
// between arbitrary device pairs is pairwise-connected on TCP (one mux
// connection per pair), so an unbounded pool at 2000 devices would
// exhaust file descriptors; the sweep still covers every device.
const tourPoolMax = 64

// TourSpec is one mixed-phase launch: a sequential tour over Route, or a
// Par fan-out with one branch per Route entry. Routes are device INDICES,
// not names — the plan stays identical across fabrics (TCP resolves names
// at attach time), which is what makes the seed-replay digest meaningful.
type TourSpec struct {
	Par   bool
	Route []int
}

// ChaseSpec is one chase storm: a mover touring Route while a stationary
// sender fires Msgs uniquely-tagged messages at it.
type ChaseSpec struct {
	Route []int
	Msgs  int
}

// Plan is the deterministic schedule of one run: a pure function of
// (profile, seed, faults), never of wall-clock or fabric. Replaying a
// seed replays the plan bit for bit.
type Plan struct {
	Profile string
	Seed    int64
	// Pool is the tour device-pool size (indices 0..Pool-1).
	Pool   int
	Tours  []TourSpec
	Chases []ChaseSpec
	// Schedule is the scripted fault sequence (crash/restart,
	// partition/heal over logical device names), empty without faults.
	Schedule []fault.Step
}

// BuildPlan derives the run schedule from the seed.
func BuildPlan(p Profile, seed int64, faults bool) *Plan {
	rng := rand.New(rand.NewSource(seed))
	pool := p.Devices
	if pool > tourPoolMax {
		pool = tourPoolMax
	}
	plan := &Plan{Profile: p.Name, Seed: seed, Pool: pool}

	pick := func(n int) []int {
		if n > pool {
			n = pool
		}
		perm := rng.Perm(pool)
		route := make([]int, n)
		copy(route, perm[:n])
		return route
	}
	for i := 0; i < p.SeqTours; i++ {
		plan.Tours = append(plan.Tours, TourSpec{Route: pick(p.TourHops)})
	}
	for i := 0; i < p.ParTours; i++ {
		plan.Tours = append(plan.Tours, TourSpec{Par: true, Route: pick(p.ParWidth)})
	}
	for i := 0; i < p.Chases; i++ {
		plan.Chases = append(plan.Chases, ChaseSpec{Route: pick(p.ChaseHops), Msgs: p.MsgsPerChase})
	}

	if faults && pool >= 4 {
		// Scripted windows are triggered by the injector's global call
		// count; the thresholds sit well inside the mixed phase's
		// estimated call volume so every window opens AND closes while
		// traffic still flows (an unhealed window would strand tours).
		est := int64(p.SeqTours*p.TourHops+p.ParTours*p.ParWidth) * 6
		crash := 1 + rng.Intn(pool-1)
		pa := 1 + rng.Intn(pool-1)
		pb := 1 + rng.Intn(pool-1)
		for pb == pa {
			pb = 1 + rng.Intn(pool-1)
		}
		plan.Schedule = []fault.Step{
			{AfterCalls: est / 20, Op: fault.OpCrash, A: deviceName(crash)},
			{AfterCalls: est / 10, Op: fault.OpRestart, A: deviceName(crash)},
			{AfterCalls: est * 3 / 20, Op: fault.OpPartition, A: deviceName(pa), B: deviceName(pb)},
			{AfterCalls: est / 5, Op: fault.OpHeal, A: deviceName(pa), B: deviceName(pb)},
		}
	}
	return plan
}

// deviceName is the logical (netsim) address of device i — the names the
// scripted schedule addresses. Only netsim fabrics run faults, so the
// logical names are always the attached ones there.
func deviceName(i int) string { return fmt.Sprintf("dev%d", i) }

// Digest fingerprints the plan. Two runs with the same profile and seed
// produce the same digest regardless of fabric, wall-clock, or goroutine
// interleaving — the replay test's identity check.
func (p *Plan) Digest() string {
	h := fnv.New64a()
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d|", p.Profile, p.Seed, p.Pool)
	for _, t := range p.Tours {
		fmt.Fprintf(&b, "t%v%v|", t.Par, t.Route)
	}
	for _, c := range p.Chases {
		fmt.Fprintf(&b, "c%v+%d|", c.Route, c.Msgs)
	}
	for _, s := range p.Schedule {
		fmt.Fprintf(&b, "f%d:%s:%s:%s|", s.AfterCalls, s.Op, s.A, s.B)
	}
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}
