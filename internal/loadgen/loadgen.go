// Package loadgen is the sustained-load harness behind `napletctl
// loadgen` and the CI SLO gate: it drives mixed mobile-agent traffic —
// concurrent sequential tours, Par fan-outs, message chase storms, and
// the §6 MAN sweep over thousands of simulated SNMP devices — against a
// real TCP fabric or the simulated WAN, with optional seeded fault
// injection, then judges the run against service-level objectives read
// straight off the telemetry histograms.
//
// Everything the run does is a deterministic function of (profile, seed):
// the plan digest printed in the report is identical across fabrics and
// replays, so a CI failure reproduces locally with -loadgen.seed.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cnmp"
	"repro/internal/fault"
	"repro/internal/itinerary"
	"repro/internal/man"
	"repro/internal/manager"
	"repro/internal/messenger"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Fabric names accepted by Config.Fabric.
const (
	FabricNetsimLAN = "netsim-lan"
	FabricNetsimWAN = "netsim-wan"
	FabricTCP       = "tcp"
)

// Config parameterizes one run.
type Config struct {
	// Profile sizes the run (a Profiles preset, possibly overridden).
	Profile Profile
	// Fabric selects the transport: FabricNetsimLAN, FabricNetsimWAN or
	// FabricTCP.
	Fabric string
	// Seed drives the plan and every probabilistic decision.
	Seed int64
	// Faults enables seeded fault injection (netsim fabrics only): the
	// probabilistic drop/duplicate/delay mix plus the plan's scripted
	// crash and partition windows.
	Faults bool
	// Out receives the human-readable report; nil discards it.
	Out io.Writer
}

// Result is one run's outcome.
type Result struct {
	Profile string
	Fabric  string
	Seed    int64
	Faults  bool
	// PlanDigest fingerprints the deterministic schedule.
	PlanDigest string
	// ToursCompleted counts completed tour launches (seq + par).
	ToursCompleted int
	// Landings counts verified agent landings across tours and sweep.
	Landings int
	// MessagesDelivered counts chase-storm messages received exactly
	// once.
	MessagesDelivered int
	// SweepDevices is the per-round device coverage of the MAN sweep.
	SweepDevices int
	// CNMPBytes / NapletBytes are the management stations' on-the-wire
	// byte totals over the sweep (netsim fabrics only; 0 on TCP).
	CNMPBytes   int64
	NapletBytes int64
	// ByteRatio is CNMPBytes/NapletBytes — the paper's §6 traffic-
	// locality claim, gated against the committed baseline.
	ByteRatio float64
	// SLOs holds every evaluated objective.
	SLOs []telemetry.SLOResult
	// Violations lists every failed invariant and objective; empty means
	// the run passed.
	Violations []string
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Metrics are the scalar measurements for baseline gating
	// (benchcheck.CompareValues).
	Metrics map[string]float64
}

// faultProbabilities is the probabilistic mix loadgen injects. Milder
// than the chaos suite's: loadgen sustains orders of magnitude more
// traffic, so even these rates inject hundreds of faults per run.
var faultProbabilities = fault.Probabilities{
	DropRequest: 0.01,
	DropReply:   0.01,
	Duplicate:   0.02,
	Delay:       0.02,
}

// Run executes one load-generation run and returns its outcome. A
// non-empty Result.Violations means the run failed its objectives; err is
// reserved for the harness itself breaking (setup failure, timeout).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	prof := cfg.Profile
	if prof.Devices <= 0 {
		return nil, fmt.Errorf("loadgen: profile needs devices")
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if prof.Overload != nil {
		return runOverload(ctx, cfg)
	}
	plan := BuildPlan(prof, cfg.Seed, cfg.Faults)
	res := &Result{
		Profile:    prof.Name,
		Fabric:     cfg.Fabric,
		Seed:       cfg.Seed,
		Faults:     cfg.Faults,
		PlanDigest: plan.Digest(),
		Metrics:    map[string]float64{},
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(ctx, prof.Timeout)
	defer cancel()

	// --- Fabric ---
	reg := telemetry.NewRegistry()
	var (
		netw   *netsim.Network
		fab    transport.Fabric
		attach func(string) string
		inj    *fault.Injector
	)
	switch cfg.Fabric {
	case FabricNetsimLAN, FabricNetsimWAN:
		link := netsim.LAN
		if cfg.Fabric == FabricNetsimWAN {
			link = netsim.WAN
		}
		netw = netsim.New(netsim.Config{
			DefaultLink: link,
			TimeScale:   0, // pure accounting: modeled delay tallied, not slept
			Seed:        cfg.Seed,
			CallTimeout: 10 * time.Second,
		})
		fab = netw
		if cfg.Faults {
			inj = fault.New(fault.Config{
				Seed:       cfg.Seed,
				P:          faultProbabilities,
				DelaySpike: 100 * time.Microsecond,
				Schedule:   plan.Schedule,
				// Owner reports are the harness's observation channel and
				// the SNMP request/reply pair is the CNMP baseline under
				// comparison, not a protocol under test: keep both clean
				// so the invariants stay sharp.
				Kinds: func(k wire.Kind) bool {
					return k != wire.KindReport &&
						k != cnmp.KindSNMPRequest && k != cnmp.KindSNMPReply
				},
				Telemetry: reg,
				MaxTrail:  1 << 16,
			})
			fab = inj.Fabric(netw)
		}
	case FabricTCP:
		if cfg.Faults {
			return nil, fmt.Errorf("loadgen: fault injection needs a netsim fabric (scripted faults address simulator names)")
		}
		tf := transport.NewTCPFabric()
		tf.Instrument(reg)
		fab = tf
		attach = func(string) string { return "127.0.0.1:0" }
	default:
		return nil, fmt.Errorf("loadgen: unknown fabric %q", cfg.Fabric)
	}

	// --- Testbed ---
	extraVars := prof.SweepVars - 4
	if extraVars < 0 {
		extraVars = 0
	}
	tb, err := man.NewTestbed(man.TestbedConfig{
		Devices:    prof.Devices,
		Interfaces: prof.Interfaces,
		ExtraVars:  extraVars,
		Seed:       cfg.Seed,
		Fabric:     fab,
		AttachAddr: attach,
		Telemetry:  reg,
		Tune: func(sc *server.Config) {
			// Generous retry budgets bridge the scripted crash and
			// partition windows; exactly-once then demands the EXACT
			// planned route, with replays absorbed by dedup, not skips.
			sc.DispatchRetries = 200
			sc.DispatchRetryDelay = 200 * time.Microsecond
			sc.Messenger = messenger.Config{
				SendRetries: 8,
				RetryDelay:  200 * time.Microsecond,
				Telemetry:   reg,
			}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: build testbed: %w", err)
	}
	defer tb.Close()
	if err := RegisterCodebases(tb.Reg); err != nil {
		return nil, err
	}

	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	// --- Phase 1: mixed traffic (tours + Par fan-outs + chase storms) ---
	fmt.Fprintf(cfg.Out, "loadgen %s/%s seed=%d devices=%d plan=%s faults=%v\n",
		prof.Name, cfg.Fabric, cfg.Seed, prof.Devices, res.PlanDigest, cfg.Faults)
	fmt.Fprintf(cfg.Out, "phase mixed: %d tours (%d par), %d chase storms x %d msgs\n",
		len(plan.Tours), countPar(plan.Tours), len(plan.Chases), prof.MsgsPerChase)

	if err := runMixed(ctx, tb, plan, prof, res, violate); err != nil {
		return res, err
	}

	// --- Phase 2: §6 MAN sweep, CNMP vs naplet ---
	fmt.Fprintf(cfg.Out, "phase sweep: %d devices x %d vars x %d rounds\n",
		prof.Devices, prof.SweepVars, prof.SweepRounds)
	if err := runSweep(ctx, tb, netw, prof, res, violate); err != nil {
		return res, err
	}

	// --- SLO evaluation over the telemetry histograms ---
	res.SLOs, _ = reg.CheckSLOs(slosFor(cfg))
	for _, s := range res.SLOs {
		if s.Violated {
			violate("SLO %s", s.String())
		}
	}
	if netw != nil && res.ByteRatio > 0 && res.ByteRatio < 0.2 {
		violate("byte ratio %.2f: naplet sweep cost >5x the CNMP baseline at the station", res.ByteRatio)
	}

	// --- Fault reconciliation ---
	if inj != nil {
		reconcileFaults(tb, inj, reg, violate)
	}

	res.Elapsed = time.Since(start)
	fillMetrics(res, reg)
	report(cfg.Out, res)
	return res, nil
}

func countPar(tours []TourSpec) int {
	n := 0
	for _, t := range tours {
		if t.Par {
			n++
		}
	}
	return n
}

// runMixed drives the tour and chase-storm traffic with a bounded
// in-flight window and verifies the exactly-once invariants: every tour
// reports its exact planned route once, every chase delivers every
// message exactly once.
func runMixed(ctx context.Context, tb *man.Testbed, plan *Plan, prof Profile, res *Result, violate func(string, ...any)) error {
	resolve := func(route []int) []string {
		out := make([]string, len(route))
		for i, d := range route {
			out[i] = tb.DeviceNames[d]
		}
		return out
	}

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		sem = make(chan struct{}, prof.Window)
	)
	for ti := range plan.Tours {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return fmt.Errorf("loadgen: mixed phase timed out launching tour %d: %w", ti, ctx.Err())
		}
		wg.Add(1)
		go func(ti int, spec TourSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			landings, err := runTour(ctx, tb, ti, spec, resolve(spec.Route))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				violate("tour %d: %v", ti, err)
				return
			}
			res.ToursCompleted++
			res.Landings += landings
		}(ti, plan.Tours[ti])
	}
	for ci := range plan.Chases {
		wg.Add(1)
		go func(ci int, spec ChaseSpec) {
			defer wg.Done()
			delivered, err := runChase(ctx, tb, ci, spec, resolve(spec.Route))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				violate("chase %d: %v", ci, err)
			}
			res.MessagesDelivered += delivered
		}(ci, plan.Chases[ci])
	}
	wg.Wait()
	if res.ToursCompleted != len(plan.Tours) {
		violate("tours completed %d/%d — lost or duplicated naplets", res.ToursCompleted, len(plan.Tours))
	}
	wantMsgs := len(plan.Chases) * prof.MsgsPerChase
	if res.MessagesDelivered != wantMsgs {
		violate("chase messages delivered %d/%d", res.MessagesDelivered, wantMsgs)
	}
	return nil
}

// runTour launches one tour from the station and verifies its report(s)
// against the planned route. Sequential tours must report the exact stop
// list once; each Par branch must report its single destination exactly
// once.
func runTour(ctx context.Context, tb *man.Testbed, ti int, spec TourSpec, route []string) (int, error) {
	pattern := itinerary.SeqVisits(route, "")
	wantReports := 1
	if spec.Par {
		pattern = itinerary.ParVisits(route, "")
		wantReports = len(route)
	}
	reports := make(chan string, wantReports+1)
	nid, err := tb.Station.Server.Launch(ctx, server.LaunchOptions{
		Owner:    "loadgen",
		Codebase: TourCodebase,
		Pattern:  pattern,
		Listener: func(r manager.Result) { reports <- string(r.Body) },
	})
	if err != nil {
		return 0, fmt.Errorf("launch: %w", err)
	}
	if !spec.Par {
		// Clones of a Par launch aren't tracked by the home manager's
		// status machine; their branch reports below are the completion
		// signal. Sequential tours have a single tracked naplet.
		if st, err := tb.Station.Server.WaitDone(ctx, nid); err != nil {
			return 0, fmt.Errorf("wait: %w", err)
		} else if st != manager.StatusCompleted {
			_, errText, _ := tb.Station.Server.Status(nid)
			return 0, fmt.Errorf("status %v (%s)", st, errText)
		}
	}
	got := make([]string, 0, wantReports)
	for len(got) < wantReports {
		select {
		case r := <-reports:
			got = append(got, r)
		case <-ctx.Done():
			return 0, fmt.Errorf("only %d/%d reports before timeout", len(got), wantReports)
		}
	}
	landings := 0
	if spec.Par {
		// Every branch visits exactly its own destination.
		sort.Strings(got)
		want := append([]string(nil), route...)
		sort.Strings(want)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			return 0, fmt.Errorf("par branches visited %v, want %v", got, want)
		}
		landings = len(route)
	} else {
		want := strings.Join(route, ",")
		if got[0] != want {
			return 0, fmt.Errorf("route %q, want %q", got[0], want)
		}
		landings = len(route)
	}
	// A late duplicate report would mean a ghost landing.
	select {
	case extra := <-reports:
		return 0, fmt.Errorf("duplicate report %q", extra)
	default:
	}
	return landings, nil
}

// runChase launches a mover touring route and a stationary sender firing
// spec.Msgs messages at it, and verifies exactly-once delivery by
// subject.
func runChase(ctx context.Context, tb *man.Testbed, ci int, spec ChaseSpec, route []string) (int, error) {
	report := make(chan string, 1)
	moverID, err := tb.Station.Server.Launch(ctx, server.LaunchOptions{
		Owner:    fmt.Sprintf("mover%d", ci),
		Codebase: MoverCodebase,
		Pattern:  itinerary.SeqVisits(route, ""),
		InitState: func(s *state.State) error {
			return s.SetPrivate(expectKey, spec.Msgs)
		},
		Listener: func(r manager.Result) { report <- string(r.Body) },
	})
	if err != nil {
		return 0, fmt.Errorf("launch mover: %w", err)
	}
	_, err = tb.Station.Server.Launch(ctx, server.LaunchOptions{
		Owner:    fmt.Sprintf("sender%d", ci),
		Codebase: SenderCodebase,
		Pattern:  itinerary.SeqVisits([]string{tb.StationName}, ""),
		InitState: func(s *state.State) error {
			if err := s.SetPrivate(targetKey, moverID.Key()); err != nil {
				return err
			}
			if err := s.SetPrivate(countKey, spec.Msgs); err != nil {
				return err
			}
			if err := s.SetPrivate(paceKey, 1); err != nil {
				return err
			}
			return s.SetPrivate(hintKey, route[0])
		},
	})
	if err != nil {
		return 0, fmt.Errorf("launch sender: %w", err)
	}
	var body string
	select {
	case body = <-report:
	case <-ctx.Done():
		return 0, fmt.Errorf("mover never completed: %w", ctx.Err())
	}
	countStr, list, _ := strings.Cut(body, ":")
	received, _ := strconv.Atoi(countStr)
	seen := map[string]int{}
	if list != "" {
		for _, s := range strings.Split(list, ",") {
			seen[s]++
		}
	}
	for subject, n := range seen {
		if n > 1 {
			return received, fmt.Errorf("message %s delivered %d times", subject, n)
		}
	}
	if received != spec.Msgs {
		return received, fmt.Errorf("received %d/%d messages", received, spec.Msgs)
	}
	return received, nil
}

// runSweep runs the §6 enterprise sweep both ways — the CNMP station
// polling every device variable-by-variable, then the MAN station
// broadcasting clones in bounded waves — and accounts the stations' wire
// bytes (netsim fabrics only).
func runSweep(ctx context.Context, tb *man.Testbed, netw *netsim.Network, prof Profile, res *Result, violate func(string, ...any)) error {
	oids := tb.QueryOIDs(prof.SweepVars)
	res.SweepDevices = prof.Devices

	// CNMP baseline: per-variable requests, the paper's micro-management
	// characterization, with bounded concurrency standing in for a
	// multi-threaded station.
	if netw != nil {
		netw.ResetStats()
	}
	for round := 0; round < prof.SweepRounds; round++ {
		rep, _, err := tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{Concurrency: 64})
		if err != nil {
			return fmt.Errorf("loadgen: cnmp sweep round %d: %w", round, err)
		}
		if len(rep) != prof.Devices {
			violate("cnmp sweep round %d covered %d/%d devices", round, len(rep), prof.Devices)
		}
		tb.Tick(time.Second)
	}
	if netw != nil {
		s := netw.HostStats(tb.CNMPName)
		res.CNMPBytes = s.BytesSent + s.BytesRecv
	}

	// Naplet sweep: one NMNaplet tours each SweepWave-sized device chunk
	// and reports the whole chunk's values home in one frame. This is the
	// shape behind the paper's station-traffic claim — the station pays
	// one launch and one report per wave while the agent record hops
	// device-to-device, off the station's links. (Broadcast clones would
	// instead drag the code bundle across the station link once per cold
	// device — E3's documented crossover — so tours are the §6 mode here.)
	// Waves run a few at a time: enough concurrency to overlap tours,
	// bounded so 2000 devices don't mean 2000 in-flight agents.
	if netw != nil {
		netw.ResetStats()
	}
	for round := 0; round < prof.SweepRounds; round++ {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
			sem      = make(chan struct{}, 8)
		)
		for lo := 0; lo < len(tb.DeviceNames); lo += prof.SweepWave {
			hi := lo + prof.SweepWave
			if hi > len(tb.DeviceNames) {
				hi = len(tb.DeviceNames)
			}
			wave := tb.DeviceNames[lo:hi]
			wg.Add(1)
			go func(lo, hi int, wave []string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				rep, _, err := tb.Station.CollectSequential(ctx, wave, oids)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("loadgen: naplet sweep wave %d-%d: %w", lo, hi, err)
					}
					return
				}
				if len(rep) != len(wave) {
					violate("naplet sweep wave %d-%d covered %d/%d devices", lo, hi, len(rep), len(wave))
				}
				res.Landings += len(wave)
			}(lo, hi, wave)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		tb.Tick(time.Second)
	}
	if netw != nil {
		s := netw.HostStats(tb.StationName)
		res.NapletBytes = s.BytesSent + s.BytesRecv
		if res.NapletBytes > 0 {
			res.ByteRatio = float64(res.CNMPBytes) / float64(res.NapletBytes)
		}
	}
	return nil
}

// slosFor returns the run's latency objectives. Bounds are deliberately
// generous — they catch structural regressions (retry storms, lock
// convoys, lost wakeups surfacing as timeout-shaped latency), not
// scheduler noise on a loaded CI machine. Fault runs get extra headroom:
// crash windows legitimately push tail latency into the retry range.
func slosFor(cfg Config) []telemetry.SLO {
	hopMax, rttMax := 1.0, 1.0
	if cfg.Fabric == FabricTCP {
		hopMax, rttMax = 2.0, 2.0
	}
	if cfg.Faults {
		hopMax *= 4
		rttMax *= 4
	}
	return []telemetry.SLO{
		{Name: "hop-latency-p99", Series: "naplet_navigator_hop_latency_seconds", Quantile: 0.99, Max: hopMax},
		{Name: "hop-latency-p50", Series: "naplet_navigator_hop_latency_seconds", Quantile: 0.50, Max: hopMax / 2},
		{Name: "confirm-rtt-p99", Series: "naplet_messenger_confirm_rtt_seconds", Quantile: 0.99, Max: rttMax},
	}
}

// reconcileFaults cross-checks the injector's trail against its counters
// and the telemetry registry, and requires every replayed transfer to
// surface as a navigator dedup hit — the chaos suite's reconciliation,
// applied to the sustained run.
func reconcileFaults(tb *man.Testbed, inj *fault.Injector, reg *telemetry.Registry, violate func(string, ...any)) {
	if dropped := inj.TrailDropped(); dropped != 0 {
		violate("fault trail overflowed (%d dropped); raise MaxTrail", dropped)
		return
	}
	tally := make(map[string]int64)
	var transferReplays int64
	for _, ev := range inj.Trail() {
		tally[ev.Fault]++
		if ev.Frame == wire.KindNapletTransfer &&
			(ev.Fault == fault.FaultDuplicate || ev.Fault == fault.FaultDropReply) {
			transferReplays++
		}
	}
	for kind, n := range inj.Counts() {
		if tally[kind] != n {
			violate("fault %s: trail=%d counts=%d", kind, tally[kind], n)
		}
		met := reg.Counter("naplet_fault_injected_total",
			"faults injected by the chaos harness", "fault", kind)
		if met.Value() != n {
			violate("fault %s: telemetry=%d counts=%d", kind, met.Value(), n)
		}
	}
	var dedupHits int64
	for _, srv := range tb.Servers() {
		dedupHits += srv.Navigator().Stats().DupTransfers
	}
	if dedupHits < transferReplays {
		violate("%d transfer replays injected but only %d dedup hits — a replay may have landed twice",
			transferReplays, dedupHits)
	}
}

// fillMetrics flattens the run into the named scalars the baseline gate
// compares.
func fillMetrics(res *Result, reg *telemetry.Registry) {
	res.Metrics["tours_completed"] = float64(res.ToursCompleted)
	res.Metrics["messages_delivered"] = float64(res.MessagesDelivered)
	res.Metrics["landings"] = float64(res.Landings)
	res.Metrics["elapsed_ms"] = float64(res.Elapsed.Milliseconds())
	if res.CNMPBytes > 0 {
		res.Metrics["cnmp_station_bytes"] = float64(res.CNMPBytes)
	}
	if res.NapletBytes > 0 {
		res.Metrics["naplet_station_bytes"] = float64(res.NapletBytes)
	}
	if res.ByteRatio > 0 {
		res.Metrics["byte_ratio"] = res.ByteRatio
	}
	if sum, ok := reg.SummaryOf("naplet_navigator_hop_latency_seconds"); ok {
		res.Metrics["hop_p99_ms"] = sum.P99 * 1000
	}
	if sum, ok := reg.SummaryOf("naplet_messenger_confirm_rtt_seconds"); ok {
		res.Metrics["confirm_p99_ms"] = sum.P99 * 1000
	}
}

// report renders the SLO table and traffic summary.
func report(w io.Writer, res *Result) {
	fmt.Fprintf(w, "traffic: %d tours, %d landings, %d msgs, sweep %d devices in %s\n",
		res.ToursCompleted, res.Landings, res.MessagesDelivered, res.SweepDevices,
		res.Elapsed.Round(time.Millisecond))
	if res.NapletBytes > 0 {
		fmt.Fprintf(w, "sweep bytes: cnmp=%s naplet=%s ratio=%.2f\n",
			stats.Bytes(res.CNMPBytes), stats.Bytes(res.NapletBytes), res.ByteRatio)
	}
	table := stats.NewTable("objective", "quantile", "observed", "bound", "status")
	for _, s := range res.SLOs {
		status := "ok"
		switch {
		case s.Skipped:
			status = "SKIPPED"
		case s.Violated:
			status = "VIOLATED"
		}
		table.AddRow(s.Name, fmt.Sprintf("p%g", s.Quantile*100),
			time.Duration(s.Observed*float64(time.Second)),
			time.Duration(s.Max*float64(time.Second)), status)
	}
	table.WriteTo(w)
	if len(res.Violations) == 0 {
		fmt.Fprintf(w, "loadgen %s/%s: PASS\n", res.Profile, res.Fabric)
		return
	}
	fmt.Fprintf(w, "loadgen %s/%s: FAIL (%d violations)\n", res.Profile, res.Fabric, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(w, "  - %s\n", v)
	}
}
