package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchcheck"
)

// Baseline is the committed BENCH_loadgen.json: the trajectory record of
// one canonical short-profile netsim run, with the deterministic byte
// metrics gated and the wall-clock metrics recorded as context only.
type Baseline struct {
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	Profile     string             `json:"profile"`
	Fabric      string             `json:"fabric"`
	Seed        int64              `json:"seed"`
	PlanDigest  string             `json:"plan_digest"`
	Values      []benchcheck.Value `json:"values"`
	// Extra records additional profile/fabric runs that ride along with
	// the canonical one — the overload-resilience scenario chiefly. The
	// -check gate replays each with its recorded seed; their scalars are
	// timing-dependent context, so the pass/fail signal is the replay's
	// own Violations (goodput floor, control SLO, shed reconciliation).
	Extra []ExtraRun `json:"extra,omitempty"`
}

// ExtraRun pins one additional run's replay coordinates and context
// scalars.
type ExtraRun struct {
	Profile    string             `json:"profile"`
	Fabric     string             `json:"fabric"`
	Seed       int64              `json:"seed"`
	PlanDigest string             `json:"plan_digest,omitempty"`
	Values     []benchcheck.Value `json:"values,omitempty"`
}

// NewExtra flattens one extra run. Nothing is gated: extra profiles
// judge themselves through Violations at replay time, and their scalars
// ride along as trajectory context only.
func NewExtra(res *Result) ExtraRun {
	e := ExtraRun{
		Profile:    res.Profile,
		Fabric:     res.Fabric,
		Seed:       res.Seed,
		PlanDigest: res.PlanDigest,
	}
	for name, val := range res.Metrics {
		e.Values = append(e.Values, benchcheck.Value{Name: name, Value: val})
	}
	sortValues(e.Values)
	return e
}

// Check compares a replay of this extra run: the plan digest must hold
// and the run must pass its own objectives.
func (e ExtraRun) Check(res *Result) []string {
	var failures []string
	if res.PlanDigest != e.PlanDigest && e.PlanDigest != "" {
		failures = append(failures, fmt.Sprintf(
			"%s/%s: plan digest %s, baseline %s — the seeded schedule drifted",
			e.Profile, e.Fabric, res.PlanDigest, e.PlanDigest))
	}
	failures = append(failures, benchcheck.CompareValues(e.Values, res.Metrics)...)
	for _, v := range res.Violations {
		failures = append(failures, fmt.Sprintf("%s/%s: %s", e.Profile, e.Fabric, v))
	}
	return failures
}

// NewBaseline flattens a run into a committable baseline. Byte counts and
// delivery totals are deterministic on netsim (TimeScale 0, no faults) so
// they gate tightly; latency and elapsed-time scalars ride along ungated
// because wall clock on a shared CI machine is not a regression signal.
func NewBaseline(res *Result) *Baseline {
	b := &Baseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Profile:     res.Profile,
		Fabric:      res.Fabric,
		Seed:        res.Seed,
		PlanDigest:  res.PlanDigest,
	}
	gated := map[string]benchcheck.Value{
		// Work totals: exact on a deterministic plan; any drop means lost
		// tours or messages.
		"tours_completed":    {HigherIsWorse: false, Tolerance: 0.001},
		"messages_delivered": {HigherIsWorse: false, Tolerance: 0.001},
		"landings":           {HigherIsWorse: false, Tolerance: 0.001},
		// Wire bytes at the stations: growth is protocol bloat.
		"cnmp_station_bytes":   {HigherIsWorse: true, Tolerance: 0.15},
		"naplet_station_bytes": {HigherIsWorse: true, Tolerance: 0.15},
		// The §6 claim itself: CNMP must stay this much heavier.
		"byte_ratio": {HigherIsWorse: false, Tolerance: 0.15},
	}
	for name, val := range res.Metrics {
		v := benchcheck.Value{Name: name, Value: val}
		if g, ok := gated[name]; ok {
			v.Gate = true
			v.HigherIsWorse = g.HigherIsWorse
			v.Tolerance = g.Tolerance
		}
		b.Values = append(b.Values, v)
	}
	sortValues(b.Values)
	return b
}

func sortValues(vs []benchcheck.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].Name < vs[j-1].Name; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

// WriteBaseline writes the baseline file.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a committed baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return &b, nil
}

// CheckBaseline replays the baseline's exact configuration (profile,
// fabric, seed) and compares the gated metrics. It returns the failure
// list — empty means the gate passed — and err for harness breakage.
func (b *Baseline) Check(res *Result) []string {
	var failures []string
	if res.PlanDigest != b.PlanDigest && b.PlanDigest != "" {
		failures = append(failures, fmt.Sprintf(
			"plan digest %s, baseline %s — the seeded schedule drifted", res.PlanDigest, b.PlanDigest))
	}
	failures = append(failures, benchcheck.CompareValues(b.Values, res.Metrics)...)
	failures = append(failures, res.Violations...)
	return failures
}
