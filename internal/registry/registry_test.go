package registry

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/naplet"
)

type fakeAgent struct{ started bool }

func (f *fakeAgent) OnStart(ctx *naplet.Context) error { f.started = true; return nil }

func testCodebase(name string) *Codebase {
	return &Codebase{
		Name: name,
		New:  func() naplet.Behavior { return &fakeAgent{} },
		Actions: map[string]ActionFunc{
			"report": func(ctx *naplet.Context) error { return nil },
		},
		Guards: map[string]GuardFunc{
			"notFound": func(ctx *naplet.Context) (bool, error) { return true, nil },
		},
	}
}

func TestRegisterAndLookup(t *testing.T) {
	r := New()
	if err := r.Register(testCodebase("app.Agent")); err != nil {
		t.Fatal(err)
	}
	cb, err := r.Lookup("app.Agent")
	if err != nil {
		t.Fatal(err)
	}
	if cb.BundleSize != DefaultBundleSize {
		t.Fatalf("default bundle size not applied: %d", cb.BundleSize)
	}
	if _, err := r.Lookup("ghost"); !errors.Is(err, ErrUnknownCodebase) {
		t.Fatalf("want ErrUnknownCodebase, got %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register(nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("nil codebase: %v", err)
	}
	if err := r.Register(&Codebase{Name: "x"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing factory: %v", err)
	}
	if err := r.Register(&Codebase{New: func() naplet.Behavior { return nil }}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("missing name: %v", err)
	}
	r.MustRegister(testCodebase("a"))
	if err := r.Register(testCodebase("a")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister must panic on duplicate")
		}
	}()
	r.MustRegister(testCodebase("a"))
}

func TestInstantiateFreshInstances(t *testing.T) {
	r := New()
	r.MustRegister(testCodebase("a"))
	b1, err := r.Instantiate("a")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := r.Instantiate("a")
	if b1 == b2 {
		t.Fatal("Instantiate must return fresh instances")
	}
	if _, err := r.Instantiate("ghost"); !errors.Is(err, ErrUnknownCodebase) {
		t.Fatal(err)
	}
}

func TestActionAndGuardResolution(t *testing.T) {
	r := New()
	r.MustRegister(testCodebase("a"))
	if _, err := r.Action("a", "report"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Action("a", "ghost"); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("want ErrUnknownAction, got %v", err)
	}
	if _, err := r.Action("ghost", "report"); !errors.Is(err, ErrUnknownCodebase) {
		t.Fatal(err)
	}
	if _, err := r.Guard("a", "notFound"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Guard("a", "ghost"); !errors.Is(err, ErrUnknownGuard) {
		t.Fatalf("want ErrUnknownGuard, got %v", err)
	}
}

func TestEvaluatorFor(t *testing.T) {
	r := New()
	r.MustRegister(testCodebase("a"))
	ev := r.EvaluatorFor("a", &naplet.Context{})
	ok, err := ev.Eval("notFound")
	if err != nil || !ok {
		t.Fatalf("Eval: %v %v", ok, err)
	}
	if _, err := ev.Eval("ghost"); !errors.Is(err, ErrUnknownGuard) {
		t.Fatalf("unknown guard via evaluator: %v", err)
	}
}

func TestNames(t *testing.T) {
	r := New()
	r.MustRegister(testCodebase("b"))
	r.MustRegister(testCodebase("a"))
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestBundleDeterministicAndSized(t *testing.T) {
	r := New()
	cb := testCodebase("a")
	cb.BundleSize = 1000
	r.MustRegister(cb)
	b1, err := r.Bundle("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != 1000 {
		t.Fatalf("bundle size = %d", len(b1))
	}
	b2, _ := r.Bundle("a")
	if !bytes.Equal(b1, b2) {
		t.Fatal("bundle must be deterministic")
	}
	cb2 := testCodebase("other")
	cb2.BundleSize = 1000
	r.MustRegister(cb2)
	b3, _ := r.Bundle("other")
	if bytes.Equal(b1, b3) {
		t.Fatal("different codebases must have different bundles")
	}
	if _, err := r.Bundle("ghost"); !errors.Is(err, ErrUnknownCodebase) {
		t.Fatal(err)
	}
}

func TestCacheLazyLoading(t *testing.T) {
	c := NewCache()
	if c.Has("a") {
		t.Fatal("fresh cache must miss")
	}
	c.Loaded("a", 500)
	if !c.Has("a") {
		t.Fatal("loaded codebase must hit")
	}
	c.Loaded("a", 500) // idempotent: no double charge
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.BytesFetched != 500 {
		t.Fatalf("stats = %+v", s)
	}
	c.Evict("a")
	if c.Has("a") {
		t.Fatal("evicted codebase must miss")
	}
}

func TestBundleDigestMemoizedAndContentBased(t *testing.T) {
	r := New()
	r.MustRegister(testCodebase("cb.one"))
	r.MustRegister(testCodebase("cb.two"))

	d1, err := r.BundleDigest("cb.one")
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not hex SHA-256", d1)
	}
	again, err := r.BundleDigest("cb.one")
	if err != nil {
		t.Fatal(err)
	}
	if again != d1 {
		t.Fatal("digest not stable")
	}
	d2, err := r.BundleDigest("cb.two")
	if err != nil {
		t.Fatal(err)
	}
	if d2 == d1 {
		t.Fatal("different bundles share a digest")
	}
	if _, err := r.BundleDigest("cb.unknown"); err == nil {
		t.Fatal("unknown codebase must error")
	}
}

func TestCacheDigestAlias(t *testing.T) {
	c := NewCache()
	if c.Alias("a", "") {
		t.Fatal("empty digest must not alias")
	}
	if c.Alias("a", "deadbeef") {
		t.Fatal("unknown digest must not alias")
	}
	c.LoadedDigest("a", "deadbeef", 500)
	if !c.Alias("b", "deadbeef") {
		t.Fatal("known digest must alias a cold name")
	}
	if !c.Has("b") {
		t.Fatal("aliased name must be loaded")
	}
	s := c.Stats()
	if s.AliasHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesFetched != 500 {
		t.Fatalf("alias must not charge a fetch: %+v", s)
	}

	// Evicting one name keeps the digest while another name still maps to
	// it; evicting the last drops it.
	c.Evict("a")
	if !c.Alias("c", "deadbeef") {
		t.Fatal("digest must survive while name b holds it")
	}
	c.Evict("b")
	c.Evict("c")
	if c.Alias("d", "deadbeef") {
		t.Fatal("digest must be gone after the last holder is evicted")
	}
}
