// Package registry implements the codebase facility of §2.1: the immutable
// codebase URL that names a naplet's classes, and the lazy code loading
// model in which "classes [are] loaded on demand and at the last moment
// possible" and "all the classes and resources needed are transported at a
// time" as one bundle.
//
// Go cannot load code dynamically, so the registry realizes the same
// protocol with a substitution documented in DESIGN.md: every agent
// behaviour, named post-action, and named guard is compiled in and
// registered under its codebase name; what travels on demand is a measured
// opaque code bundle whose size models the JAR transfer. A per-server Cache
// records which codebases a server has already loaded, so a bundle crosses
// the network only on the first arrival of an agent type at a server —
// exactly the cost profile of lazy class loading.
package registry

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/itinerary"
	"repro/internal/naplet"
)

// ActionFunc is a named itinerary post-action (the paper's Operable): "a
// post-action after each visit … facilitates inter-agent communication and
// synchronization" (§2.1).
type ActionFunc func(ctx *naplet.Context) error

// GuardFunc is a named conditional-visit guard (the paper's C in <C→S;T>).
type GuardFunc func(ctx *naplet.Context) (bool, error)

// Factory instantiates a fresh behaviour object for a landing naplet.
type Factory func() naplet.Behavior

// Codebase bundles everything shipped under one codebase name: the
// behaviour factory, named actions and guards used by itineraries, and the
// size of the simulated code bundle.
type Codebase struct {
	// Name is the registry key: the paper's codebase URL.
	Name string
	// New creates the behaviour executed at each visit.
	New Factory
	// Actions maps post-action names to their implementations.
	Actions map[string]ActionFunc
	// Guards maps guard names to their implementations.
	Guards map[string]GuardFunc
	// BundleSize is the size in bytes of the simulated code bundle
	// transported on a cache miss. Zero means DefaultBundleSize.
	BundleSize int
}

// DefaultBundleSize approximates a small agent JAR (32 KiB).
const DefaultBundleSize = 32 << 10

// Errors reported by the registry.
var (
	ErrUnknownCodebase = errors.New("registry: unknown codebase")
	ErrUnknownAction   = errors.New("registry: unknown action")
	ErrUnknownGuard    = errors.New("registry: unknown guard")
	ErrDuplicate       = errors.New("registry: codebase already registered")
	ErrInvalid         = errors.New("registry: invalid codebase")
)

// Registry maps codebase names to codebases. A Registry is safe for
// concurrent use. Typically one process-wide registry is shared by all
// in-process servers, standing in for the universe of published agent code.
type Registry struct {
	mu        sync.RWMutex
	codebases map[string]*Codebase
	digests   map[string]string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		codebases: make(map[string]*Codebase),
		digests:   make(map[string]string),
	}
}

// Register adds a codebase. The name must be unique and the factory
// non-nil.
func (r *Registry) Register(cb *Codebase) error {
	if cb == nil || cb.Name == "" || cb.New == nil {
		return fmt.Errorf("%w: need name and factory", ErrInvalid)
	}
	if cb.BundleSize == 0 {
		cb.BundleSize = DefaultBundleSize
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.codebases[cb.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicate, cb.Name)
	}
	r.codebases[cb.Name] = cb
	return nil
}

// MustRegister is like Register but panics on error; for package init
// registration of compiled-in agents.
func (r *Registry) MustRegister(cb *Codebase) {
	if err := r.Register(cb); err != nil {
		panic(err)
	}
}

// Lookup returns the codebase under name.
func (r *Registry) Lookup(name string) (*Codebase, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cb, ok := r.codebases[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodebase, name)
	}
	return cb, nil
}

// Names lists registered codebases, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.codebases))
	for n := range r.codebases {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Instantiate creates a behaviour for the codebase.
func (r *Registry) Instantiate(name string) (naplet.Behavior, error) {
	cb, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return cb.New(), nil
}

// Action resolves a named post-action of a codebase.
func (r *Registry) Action(codebase, action string) (ActionFunc, error) {
	cb, err := r.Lookup(codebase)
	if err != nil {
		return nil, err
	}
	f, ok := cb.Actions[action]
	if !ok {
		return nil, fmt.Errorf("%w: %q in codebase %q", ErrUnknownAction, action, codebase)
	}
	return f, nil
}

// Guard resolves a named guard of a codebase.
func (r *Registry) Guard(codebase, guard string) (GuardFunc, error) {
	cb, err := r.Lookup(codebase)
	if err != nil {
		return nil, err
	}
	f, ok := cb.Guards[guard]
	if !ok {
		return nil, fmt.Errorf("%w: %q in codebase %q", ErrUnknownGuard, guard, codebase)
	}
	return f, nil
}

// EvaluatorFor adapts a codebase's guards to the itinerary.Evaluator
// interface, binding them to the given execution context.
func (r *Registry) EvaluatorFor(codebase string, ctx *naplet.Context) itinerary.Evaluator {
	return itinerary.EvalFunc(func(guard string) (bool, error) {
		g, err := r.Guard(codebase, guard)
		if err != nil {
			return false, err
		}
		return g(ctx)
	})
}

// Bundle synthesizes the simulated code bundle for a codebase: BundleSize
// bytes of deterministic, codebase-dependent content (so transfers are
// measurable and reproducible).
func (r *Registry) Bundle(name string) ([]byte, error) {
	cb, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	seed := sha256.Sum256([]byte(cb.Name))
	data := make([]byte, cb.BundleSize)
	var ctr uint64
	for i := 0; i < len(data); i += sha256.Size {
		var block [sha256.Size + 8]byte
		copy(block[:], seed[:])
		binary.BigEndian.PutUint64(block[sha256.Size:], ctr)
		sum := sha256.Sum256(block[:])
		copy(data[i:], sum[:])
		ctr++
	}
	return data, nil
}

// BundleDigest returns the content digest (hex SHA-256) of the codebase's
// bundle, memoized so origin servers compute it once per codebase rather
// than re-hashing 32 KiB on every dispatch. The digest is the
// content-addressed bundle-cache key: a destination that already holds a
// bundle with this digest — under any codebase name — need not refetch.
func (r *Registry) BundleDigest(name string) (string, error) {
	r.mu.RLock()
	d, ok := r.digests[name]
	r.mu.RUnlock()
	if ok {
		return d, nil
	}
	data, err := r.Bundle(name)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	d = hex.EncodeToString(sum[:])
	r.mu.Lock()
	r.digests[name] = d
	r.mu.Unlock()
	return d, nil
}

// CacheStats counts lazy-loading activity at one server.
type CacheStats struct {
	Hits         int64
	Misses       int64
	BytesFetched int64
	// AliasHits counts landings that skipped a bundle transfer because a
	// bundle with the same content digest was already cached, even though
	// the codebase name itself was cold.
	AliasHits int64
}

// Cache is one server's loaded-codebase set: the lazy code loading state.
// Entries are tracked both by codebase name and by content digest, so a
// bundle already present under one name satisfies a landing under another
// (content-addressed caching). It is safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	loaded     map[string]bool
	byDigest   map[string]bool
	nameDigest map[string]string
	stats      CacheStats
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		loaded:     make(map[string]bool),
		byDigest:   make(map[string]bool),
		nameDigest: make(map[string]string),
	}
}

// Has reports whether the codebase is already loaded at this server and
// records the hit or miss.
func (c *Cache) Has(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.loaded[name] {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// Loaded marks the codebase loaded after a successful bundle transfer of
// the given size.
func (c *Cache) Loaded(name string, bundleBytes int) {
	c.LoadedDigest(name, "", bundleBytes)
}

// LoadedDigest marks the codebase loaded, recording the content digest of
// its bundle so future landings under other names can match by content. An
// empty digest marks the name loaded without content addressing.
func (c *Cache) LoadedDigest(name, digest string, bundleBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.loaded[name] {
		c.loaded[name] = true
		c.stats.BytesFetched += int64(bundleBytes)
	}
	if digest != "" {
		c.byDigest[digest] = true
		c.nameDigest[name] = digest
	}
}

// Alias reports whether a bundle with the given content digest is already
// cached; if so, it marks name loaded without a transfer and counts an
// alias hit. Unknown or empty digests return false.
func (c *Cache) Alias(name, digest string) bool {
	if digest == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.byDigest[digest] {
		return false
	}
	if !c.loaded[name] {
		c.loaded[name] = true
		c.nameDigest[name] = digest
		c.stats.AliasHits++
	}
	return true
}

// Evict removes a codebase from the cache (failure injection and cold-start
// experiments). The content digest is dropped too, unless another loaded
// name still refers to the same bundle.
func (c *Cache) Evict(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.loaded, name)
	d := c.nameDigest[name]
	delete(c.nameDigest, name)
	if d != "" {
		shared := false
		for _, other := range c.nameDigest {
			if other == d {
				shared = true
				break
			}
		}
		if !shared {
			delete(c.byDigest, d)
		}
	}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
