// Package cnmp implements the conventional, centralized SNMP network
// management baseline of §6: "a management station communicates to the
// SNMP agents via a number of fine-grained get and set operations for MIB
// parameters. This centralized micro-management approach for large
// networks tends to generate heavy traffic between the management station
// and network devices and excessive computational overhead on the
// management station."
//
// The station polls every device over the network, one request per MIB
// variable in micro-management mode (the paper's characterization) or one
// batched request per device in the optimized-baseline ablation. Each
// device runs a Responder: its SNMP daemon attached to the fabric.
package cnmp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snmp"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Frame kinds of the SNMP-over-fabric protocol.
const (
	KindSNMPRequest wire.Kind = "snmp.request"
	KindSNMPReply   wire.Kind = "snmp.reply"
)

// RequestBody is the wire body of a KindSNMPRequest frame.
type RequestBody struct {
	Community string
	Op        snmp.PDUOp
	OIDs      []string
	// SetValues carries the values of an OpSet, parallel to OIDs.
	SetValues []string
}

// ReplyBody is the wire body of a KindSNMPReply frame.
type ReplyBody struct {
	OIDs   []string
	Values []string
	Err    string
}

// Responder is one device's SNMP daemon on the fabric.
type Responder struct {
	device *snmp.Device
	node   transport.Node
	served atomic.Int64
}

// AttachResponder exposes a device's SNMP agent at addr.
func AttachResponder(fabric transport.Fabric, addr string, dev *snmp.Device) (*Responder, error) {
	r := &Responder{device: dev}
	node, err := fabric.Attach(addr, r.handle)
	if err != nil {
		return nil, err
	}
	r.node = node
	return r, nil
}

// Addr is the responder's resolved fabric address.
func (r *Responder) Addr() string { return r.node.Addr() }

// Served reports how many requests the responder has answered.
func (r *Responder) Served() int64 { return r.served.Load() }

// Close detaches the responder.
func (r *Responder) Close() error { return r.node.Close() }

func (r *Responder) handle(from string, f wire.Frame) (wire.Frame, error) {
	if f.Kind != KindSNMPRequest {
		return wire.Frame{}, fmt.Errorf("cnmp: unexpected kind %q", f.Kind)
	}
	var body RequestBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	r.served.Add(1)

	req := snmp.Request{Community: body.Community, Op: body.Op}
	for i, s := range body.OIDs {
		oid, err := snmp.ParseOID(s)
		if err != nil {
			return wire.NewFrame(KindSNMPReply, f.To, f.From, &ReplyBody{Err: err.Error()})
		}
		vb := snmp.VarBind{OID: oid}
		if body.Op == snmp.OpSet && i < len(body.SetValues) {
			vb.Value = snmp.StringValue(body.SetValues[i])
		}
		req.Bindings = append(req.Bindings, vb)
	}
	resp := r.device.Agent.Serve(req)
	reply := ReplyBody{Err: resp.Err}
	for _, b := range resp.Bindings {
		reply.OIDs = append(reply.OIDs, b.OID.String())
		reply.Values = append(reply.Values, b.Value.Render())
	}
	return wire.NewFrame(KindSNMPReply, f.To, f.From, &reply)
}

// Stats summarizes one collection run.
type Stats struct {
	// Requests is the number of request/reply round trips performed.
	Requests int64
	// Errors counts failed round trips.
	Errors int64
	// Elapsed is the wall time of the run (scale by the fabric's
	// TimeScale for modeled time).
	Elapsed time.Duration
}

// Options configure a collection run.
type Options struct {
	// Concurrency bounds simultaneous device polls; ≤1 means strictly
	// sequential (the classic management station loop).
	Concurrency int
	// Batch sends one request carrying all variables per device instead
	// of one request per variable. False reproduces the paper's
	// micro-management characterization.
	Batch bool
	// Community is the read community (default "public").
	Community string
}

// Report holds collected values: device → OID string → rendered value.
type Report map[string]map[string]string

// Station is the centralized management station.
type Station struct {
	node transport.Node
	sink trapSink
}

// NewStation attaches the management station at addr. The station answers
// only trap notifications; every other inbound frame is an error.
func NewStation(fabric transport.Fabric, addr string) (*Station, error) {
	s := &Station{}
	node, err := fabric.Attach(addr, func(from string, f wire.Frame) (wire.Frame, error) {
		if f.Kind == KindSNMPTrap {
			return s.handleTrap(f)
		}
		return wire.Frame{}, errors.New("cnmp: station serves no requests")
	})
	if err != nil {
		return nil, err
	}
	s.node = node
	return s, nil
}

// Node returns the station's fabric node.
func (s *Station) Node() transport.Node { return s.node }

// Close detaches the station.
func (s *Station) Close() error { return s.node.Close() }

// get performs one SNMP round trip to a device responder.
func (s *Station) get(ctx context.Context, device, community string, oids []string) ([]string, []string, error) {
	body := RequestBody{Community: community, Op: snmp.OpGet, OIDs: oids}
	f, err := wire.NewFrame(KindSNMPRequest, "", "", &body)
	if err != nil {
		return nil, nil, err
	}
	reply, err := s.node.Call(ctx, device, f)
	if err != nil {
		return nil, nil, err
	}
	var rb ReplyBody
	if err := reply.Body(&rb); err != nil {
		return nil, nil, err
	}
	if rb.Err != "" {
		return nil, nil, errors.New(rb.Err)
	}
	return rb.OIDs, rb.Values, nil
}

// Get retrieves the named variables from one device, one round trip per
// variable (micro-management) or one batched round trip.
func (s *Station) Get(ctx context.Context, device string, oids []snmp.OID, opts Options) (map[string]string, Stats, error) {
	if opts.Community == "" {
		opts.Community = "public"
	}
	out := make(map[string]string, len(oids))
	var st Stats
	start := time.Now()
	defer func() { st.Elapsed = time.Since(start) }()

	if opts.Batch {
		names := make([]string, len(oids))
		for i, o := range oids {
			names[i] = o.String()
		}
		st.Requests++
		rois, vals, err := s.get(ctx, device, opts.Community, names)
		if err != nil {
			st.Errors++
			return nil, st, err
		}
		for i := range rois {
			out[rois[i]] = vals[i]
		}
		return out, st, nil
	}
	for _, o := range oids {
		st.Requests++
		rois, vals, err := s.get(ctx, device, opts.Community, []string{o.String()})
		if err != nil {
			st.Errors++
			return nil, st, err
		}
		out[rois[0]] = vals[0]
	}
	return out, st, nil
}

// Collect polls every device for every variable, the station's management
// sweep. It returns per-device results and aggregate statistics.
func (s *Station) Collect(ctx context.Context, devices []string, oids []snmp.OID, opts Options) (Report, Stats, error) {
	report := make(Report, len(devices))
	var total Stats
	start := time.Now()
	defer func() { total.Elapsed = time.Since(start) }()

	conc := opts.Concurrency
	if conc <= 1 {
		for _, d := range devices {
			vals, st, err := s.Get(ctx, d, oids, opts)
			total.Requests += st.Requests
			total.Errors += st.Errors
			if err != nil {
				return report, total, fmt.Errorf("cnmp: device %s: %w", d, err)
			}
			report[d] = vals
		}
		return report, total, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		sem      = make(chan struct{}, conc)
		wg       sync.WaitGroup
	)
	for _, d := range devices {
		wg.Add(1)
		go func(d string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			vals, st, err := s.Get(ctx, d, oids, opts)
			mu.Lock()
			defer mu.Unlock()
			total.Requests += st.Requests
			total.Errors += st.Errors
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("cnmp: device %s: %w", d, err)
				}
				return
			}
			report[d] = vals
		}(d)
	}
	wg.Wait()
	return report, total, firstErr
}
