package cnmp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/snmp"
	"repro/internal/wire"
)

func rig(t *testing.T, devices int) (*netsim.Network, *Station, []string) {
	t.Helper()
	net := netsim.New(netsim.Config{})
	names := make([]string, devices)
	for i := 0; i < devices; i++ {
		name := string(rune('a'+i)) + ":161"
		dev := snmp.NewDevice(snmp.DeviceConfig{Name: name, Seed: int64(i), ExtraVars: 8})
		if _, err := AttachResponder(net, name, dev); err != nil {
			t.Fatal(err)
		}
		names[i] = name
	}
	st, err := NewStation(net, "station")
	if err != nil {
		t.Fatal(err)
	}
	return net, st, names
}

func TestGetMicroManagement(t *testing.T) {
	net, st, names := rig(t, 1)
	oids := []snmp.OID{snmp.OIDSysDescr, snmp.OIDSysName, snmp.OIDIfNumber}
	vals, stats, err := st.Get(context.Background(), names[0], oids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Micro-management: one round trip per variable.
	if stats.Requests != 3 {
		t.Fatalf("requests = %d, want 3", stats.Requests)
	}
	if vals[snmp.OIDSysName.String()] != names[0] {
		t.Fatalf("vals = %v", vals)
	}
	// 3 request frames + 3 replies crossed the network.
	if got := net.HostStats("station").FramesSent; got != 3 {
		t.Fatalf("station frames sent = %d", got)
	}
}

func TestGetBatched(t *testing.T) {
	net, st, names := rig(t, 1)
	oids := []snmp.OID{snmp.OIDSysDescr, snmp.OIDSysName, snmp.OIDIfNumber}
	vals, stats, err := st.Get(context.Background(), names[0], oids, Options{Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 {
		t.Fatalf("batched requests = %d", stats.Requests)
	}
	if len(vals) != 3 {
		t.Fatalf("vals = %v", vals)
	}
	if got := net.HostStats("station").FramesSent; got != 1 {
		t.Fatalf("station frames sent = %d", got)
	}
}

func TestCollectSequentialAndConcurrent(t *testing.T) {
	_, st, names := rig(t, 4)
	oids := []snmp.OID{snmp.OIDSysName, snmp.OIDSysUpTime}

	rep, stats, err := st.Collect(context.Background(), names, oids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep) != 4 || stats.Requests != 8 {
		t.Fatalf("sequential: %d devices, %d requests", len(rep), stats.Requests)
	}
	rep2, stats2, err := st.Collect(context.Background(), names, oids, Options{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2) != 4 || stats2.Requests != 8 {
		t.Fatalf("concurrent: %d devices, %d requests", len(rep2), stats2.Requests)
	}
	for _, d := range names {
		if rep[d][snmp.OIDSysName.String()] != rep2[d][snmp.OIDSysName.String()] {
			t.Fatal("sequential and concurrent reports differ")
		}
	}
}

func TestCollectErrorPropagates(t *testing.T) {
	_, st, names := rig(t, 2)
	bad := []snmp.OID{snmp.MustParseOID("9.9.9.9")}
	_, stats, err := st.Collect(context.Background(), names, bad, Options{})
	if err == nil || !strings.Contains(err.Error(), "noSuchName") {
		t.Fatalf("want noSuchName, got %v", err)
	}
	if stats.Errors == 0 {
		t.Fatal("error not counted")
	}
	// Concurrent path surfaces the error too.
	_, _, err = st.Collect(context.Background(), names, bad, Options{Concurrency: 2})
	if err == nil {
		t.Fatal("concurrent error lost")
	}
}

func TestBadCommunity(t *testing.T) {
	_, st, names := rig(t, 1)
	_, _, err := st.Get(context.Background(), names[0], []snmp.OID{snmp.OIDSysName}, Options{Community: "wrong"})
	if err == nil || !strings.Contains(err.Error(), "community") {
		t.Fatalf("community: %v", err)
	}
}

func TestSetOverWire(t *testing.T) {
	net := netsim.New(netsim.Config{})
	dev := snmp.NewDevice(snmp.DeviceConfig{Name: "r1"})
	AttachResponder(net, "r1:161", dev)
	st, _ := NewStation(net, "station")

	body := RequestBody{Community: "public", Op: snmp.OpSet,
		OIDs: []string{snmp.OIDSysName.String()}, SetValues: []string{"renamed"}}
	f, _ := newFrame(t, body)
	reply, err := st.Node().Call(context.Background(), "r1:161", f)
	if err != nil {
		t.Fatal(err)
	}
	var rb ReplyBody
	if err := reply.Body(&rb); err != nil || rb.Err != "" {
		t.Fatalf("set reply: %+v %v", rb, err)
	}
	if v, _ := dev.Agent.Get("public", snmp.OIDSysName); v.Str != "renamed" {
		t.Fatal("set not applied")
	}
}

func TestResponderServedCounterAndUnknownKind(t *testing.T) {
	net := netsim.New(netsim.Config{})
	dev := snmp.NewDevice(snmp.DeviceConfig{Name: "r1"})
	resp, _ := AttachResponder(net, "r1:161", dev)
	st, _ := NewStation(net, "station")
	st.Get(context.Background(), "r1:161", []snmp.OID{snmp.OIDSysName}, Options{})
	if resp.Served() != 1 {
		t.Fatalf("served = %d", resp.Served())
	}
	// A non-SNMP frame is rejected.
	f, _ := newFrame(t, RequestBody{})
	f.Kind = "bogus"
	if _, err := st.Node().Call(context.Background(), "r1:161", f); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// newFrame wraps wire.NewFrame for tests.
func newFrame(t *testing.T, body RequestBody) (wire.Frame, error) {
	t.Helper()
	return wire.NewFrame(KindSNMPRequest, "", "", &body)
}
