package cnmp

import (
	"context"
	"sync"

	"repro/internal/snmp"
	"repro/internal/wire"
)

// KindSNMPTrap is the wire kind of an asynchronous trap notification.
const KindSNMPTrap wire.Kind = "snmp.trap"

// TrapBody is the wire body of one trap notification. Conventional SNMP
// sends one PDU per trap; the forwarder mirrors that, one frame per trap.
type TrapBody struct {
	Trap snmp.Trap
}

// trapAck acknowledges a trap frame (SNMP traps are unacknowledged UDP in
// reality; the fabric is request/reply, so the ack is an empty frame whose
// bytes are part of the modelled cost).
type trapAck struct{ OK bool }

// ForwardTraps drains the device's pending notifications and forwards each
// to the management station, the centralized trap path: every event —
// significant or noise — crosses the network.
func (r *Responder) ForwardTraps(ctx context.Context, station string) (int, error) {
	traps := r.device.TakeTraps()
	for _, tr := range traps {
		f, err := wire.NewFrame(KindSNMPTrap, "", "", &TrapBody{Trap: tr})
		if err != nil {
			return 0, err
		}
		if _, err := r.node.Call(ctx, station, f); err != nil {
			return 0, err
		}
	}
	return len(traps), nil
}

// trapSink collects traps received by a station.
type trapSink struct {
	mu    sync.Mutex
	traps []snmp.Trap
}

func (s *trapSink) add(tr snmp.Trap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traps = append(s.traps, tr)
}

// Traps returns a copy of every trap the station has received.
func (s *Station) Traps() []snmp.Trap {
	s.sink.mu.Lock()
	defer s.sink.mu.Unlock()
	return append([]snmp.Trap(nil), s.sink.traps...)
}

// SignificantTraps returns the received traps a manager must act on.
func (s *Station) SignificantTraps() []snmp.Trap {
	var out []snmp.Trap
	for _, tr := range s.Traps() {
		if tr.Kind.Significant() {
			out = append(out, tr)
		}
	}
	return out
}

// handleTrap stores an inbound trap notification.
func (s *Station) handleTrap(f wire.Frame) (wire.Frame, error) {
	var body TrapBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	s.sink.add(body.Trap)
	return wire.NewFrame(KindSNMPTrap, f.To, f.From, &trapAck{OK: true})
}
