// Package snmp is the network-management substrate for §6 of the Naplet
// paper: an RFC1213-flavoured MIB tree, an SNMPv1-style agent with
// Get/GetNext/Set/Walk operations and community-based access, and simulated
// managed devices whose counters evolve over time.
//
// It substitutes for the AdventNet SNMP package and the real managed
// devices of the paper's testbed (see DESIGN.md §2): the experiments need
// per-variable request/reply semantics, realistic PDU sizes, and per-device
// MIB state — all of which this package provides with measurable,
// reproducible behaviour.
package snmp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// OID is an SNMP object identifier: a sequence of non-negative integers.
// OIDs are value-like; operations return fresh slices.
type OID []int

// Well-known RFC1213 OIDs used by the MIB builder and the experiments.
var (
	OIDSystem     = MustParseOID("1.3.6.1.2.1.1")
	OIDSysDescr   = MustParseOID("1.3.6.1.2.1.1.1.0")
	OIDSysUpTime  = MustParseOID("1.3.6.1.2.1.1.3.0")
	OIDSysName    = MustParseOID("1.3.6.1.2.1.1.5.0")
	OIDInterfaces = MustParseOID("1.3.6.1.2.1.2")
	OIDIfNumber   = MustParseOID("1.3.6.1.2.1.2.1.0")
	OIDIfTable    = MustParseOID("1.3.6.1.2.1.2.2.1")
	OIDIP         = MustParseOID("1.3.6.1.2.1.4")
)

// ErrBadOID reports a malformed OID string.
var ErrBadOID = errors.New("snmp: malformed OID")

// ParseOID parses dotted-decimal notation ("1.3.6.1.2.1.1.1.0").
func ParseOID(s string) (OID, error) {
	if s == "" {
		return nil, fmt.Errorf("%w: empty", ErrBadOID)
	}
	parts := strings.Split(strings.TrimPrefix(s, "."), ".")
	oid := make(OID, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: %q", ErrBadOID, s)
		}
		oid[i] = n
	}
	return oid, nil
}

// MustParseOID is like ParseOID but panics on error; for constants.
func MustParseOID(s string) OID {
	oid, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return oid
}

// String renders dotted-decimal notation.
func (o OID) String() string {
	parts := make([]string, len(o))
	for i, n := range o {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ".")
}

// Compare orders OIDs in MIB (lexicographic) order.
func (o OID) Compare(other OID) int {
	for i := 0; i < len(o) && i < len(other); i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// Equal reports whether two OIDs are identical.
func (o OID) Equal(other OID) bool { return o.Compare(other) == 0 }

// HasPrefix reports whether o lies under the given subtree root.
func (o OID) HasPrefix(root OID) bool {
	if len(o) < len(root) {
		return false
	}
	for i, n := range root {
		if o[i] != n {
			return false
		}
	}
	return true
}

// Append extends the OID with additional arcs, returning a fresh OID.
func (o OID) Append(arcs ...int) OID {
	out := make(OID, len(o)+len(arcs))
	copy(out, o)
	copy(out[len(o):], arcs)
	return out
}

// Clone returns a copy.
func (o OID) Clone() OID { return o.Append() }
