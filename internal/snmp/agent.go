package snmp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrBadCommunity reports a community-string mismatch.
var ErrBadCommunity = errors.New("snmp: bad community")

// PDUOp is an SNMP protocol operation.
type PDUOp int

// Protocol operations (the SNMPv1 subset the paper's CNMP uses).
const (
	OpGet PDUOp = iota
	OpGetNext
	OpSet
)

// String returns the operation name.
func (op PDUOp) String() string {
	switch op {
	case OpGet:
		return "get"
	case OpGetNext:
		return "get-next"
	case OpSet:
		return "set"
	default:
		return fmt.Sprintf("PDUOp(%d)", int(op))
	}
}

// VarBind is one OID/value pair in a PDU.
type VarBind struct {
	OID   OID
	Value Value
}

// Request is an SNMP request PDU.
type Request struct {
	Community string
	Op        PDUOp
	Bindings  []VarBind
}

// Response is an SNMP response PDU.
type Response struct {
	Bindings []VarBind
	// Err carries noSuchName / endOfMIB / badCommunity textually (errors
	// must serialize for the CNMP wire path).
	Err string
}

// EstimateBERSize approximates the SNMPv1 BER encoding size of a PDU with
// the given varbinds: message header + community + PDU header ≈ 25 bytes,
// plus per-varbind OID and value encodings. The experiments report
// measured fabric bytes; this model documents how close they sit to real
// SNMP traffic.
func EstimateBERSize(community string, bindings []VarBind) int {
	size := 25 + len(community)
	for _, b := range bindings {
		size += 4 + len(b.OID) + 1 // OID: ~1 byte/arc + tag/len
		size += b.Value.EncodedLen()
	}
	return size
}

// Agent is the SNMP daemon of one managed device: it owns the device MIB
// and answers protocol requests after a community check. The paper's MAN
// framework accesses it locally through the NetManagement privileged
// service; the CNMP baseline accesses it remotely over the fabric.
type Agent struct {
	mib       *MIB
	community string
}

// NewAgent builds an agent over a MIB with the given read community.
func NewAgent(mib *MIB, community string) *Agent {
	return &Agent{mib: mib, community: community}
}

// MIB exposes the agent's MIB (device-side instrumentation).
func (a *Agent) MIB() *MIB { return a.mib }

// Serve answers one request PDU.
func (a *Agent) Serve(req Request) Response {
	if req.Community != a.community {
		return Response{Err: ErrBadCommunity.Error()}
	}
	out := Response{Bindings: make([]VarBind, 0, len(req.Bindings))}
	for _, b := range req.Bindings {
		switch req.Op {
		case OpGet:
			v, err := a.mib.Get(b.OID)
			if err != nil {
				return Response{Err: err.Error()}
			}
			out.Bindings = append(out.Bindings, VarBind{OID: b.OID.Clone(), Value: v})
		case OpGetNext:
			next, v, err := a.mib.Next(b.OID)
			if err != nil {
				return Response{Err: err.Error()}
			}
			out.Bindings = append(out.Bindings, VarBind{OID: next, Value: v})
		case OpSet:
			if err := a.mib.Set(b.OID, b.Value); err != nil {
				return Response{Err: err.Error()}
			}
			out.Bindings = append(out.Bindings, b)
		default:
			return Response{Err: fmt.Sprintf("snmp: bad op %d", req.Op)}
		}
	}
	return out
}

// Get is the convenience single-variable form used by local services.
func (a *Agent) Get(community string, oid OID) (Value, error) {
	resp := a.Serve(Request{Community: community, Op: OpGet, Bindings: []VarBind{{OID: oid}}})
	if resp.Err != "" {
		return Value{}, errors.New(resp.Err)
	}
	return resp.Bindings[0].Value, nil
}

// WalkSubtree collects all bindings under root (a local agent-side walk).
func (a *Agent) WalkSubtree(community string, root OID) ([]VarBind, error) {
	if community != a.community {
		return nil, ErrBadCommunity
	}
	var out []VarBind
	err := a.mib.Walk(root, func(oid OID, v Value) error {
		out = append(out, VarBind{OID: oid, Value: v})
		return nil
	})
	return out, err
}

// Device is one simulated managed device: a named host with an RFC1213-ish
// MIB, an SNMP agent, and a synthetic workload that evolves its counters.
type Device struct {
	Name  string
	Agent *Agent

	mu     sync.Mutex
	rng    *rand.Rand
	ifaces int
	uptime time.Duration

	trapsBuf trapBuffer
}

// DeviceConfig parameterizes a simulated device.
type DeviceConfig struct {
	// Name is the device host name.
	Name string
	// Interfaces is the interface count (default 4).
	Interfaces int
	// Community is the read community (default "public").
	Community string
	// Seed seeds the device's workload process.
	Seed int64
	// ExtraVars adds this many synthetic scalar objects under the
	// enterprise subtree, letting experiments scale per-device MIB size.
	ExtraVars int
}

// Interface table column bases under OIDIfTable.
const (
	colIfIndex      = 1
	colIfDescr      = 2
	colIfSpeed      = 5
	colIfInOctets   = 10
	colIfOutOctets  = 16
	colIfOperStatus = 8
)

// enterpriseBase roots the synthetic scalar objects (1.3.6.1.4.1.9999).
var enterpriseBase = MustParseOID("1.3.6.1.4.1.9999.1")

// NewDevice builds a managed device with a populated MIB.
func NewDevice(cfg DeviceConfig) *Device {
	if cfg.Interfaces <= 0 {
		cfg.Interfaces = 4
	}
	if cfg.Community == "" {
		cfg.Community = "public"
	}
	mib := NewMIB()
	mib.Define(OIDSysDescr, StringValue("Naplet simulated router "+cfg.Name), true)
	mib.Define(OIDSysUpTime, TimeTicksValue(0), true)
	mib.Define(MustParseOID("1.3.6.1.2.1.1.4.0"), StringValue("czxu@ece.eng.wayne.edu"), false)
	mib.Define(OIDSysName, StringValue(cfg.Name), false)
	mib.Define(MustParseOID("1.3.6.1.2.1.1.6.0"), StringValue("simulated naplet space"), false)
	mib.Define(OIDIfNumber, IntValue(int64(cfg.Interfaces)), true)
	for i := 1; i <= cfg.Interfaces; i++ {
		mib.Define(OIDIfTable.Append(colIfIndex, i), IntValue(int64(i)), true)
		mib.Define(OIDIfTable.Append(colIfDescr, i), StringValue(fmt.Sprintf("eth%d", i-1)), true)
		mib.Define(OIDIfTable.Append(colIfSpeed, i), GaugeValue(1e9), true)
		mib.Define(OIDIfTable.Append(colIfInOctets, i), CounterValue(0), true)
		mib.Define(OIDIfTable.Append(colIfOutOctets, i), CounterValue(0), true)
		mib.Define(OIDIfTable.Append(colIfOperStatus, i), IntValue(1), true)
	}
	mib.Define(OIDIP.Append(1, 0), IntValue(1), false)    // ipForwarding
	mib.Define(OIDIP.Append(3, 0), CounterValue(0), true) // ipInReceives
	for i := 0; i < cfg.ExtraVars; i++ {
		mib.Define(enterpriseBase.Append(i, 0), CounterValue(int64(i)), true)
	}
	return &Device{
		Name:   cfg.Name,
		Agent:  NewAgent(mib, cfg.Community),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		ifaces: cfg.Interfaces,
	}
}

// ExtraVarOID returns the OID of the i-th synthetic scalar, for parameter
// sweeps over per-device variable counts.
func ExtraVarOID(i int) OID { return enterpriseBase.Append(i, 0) }

// Tick advances the device's synthetic workload by dt: uptime ticks,
// interface counters grow with random traffic, and interfaces occasionally
// flap.
func (d *Device) Tick(dt time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.uptime += dt
	mib := d.Agent.MIB()
	mib.ForceSet(OIDSysUpTime, TimeTicksValue(int64(d.uptime/(10*time.Millisecond)))) // ticks are 1/100 s
	for i := 1; i <= d.ifaces; i++ {
		in := d.rng.Int63n(1 << 20)
		out := d.rng.Int63n(1 << 20)
		mib.Adjust(OIDIfTable.Append(colIfInOctets, i), in)
		mib.Adjust(OIDIfTable.Append(colIfOutOctets, i), out)
		if d.rng.Float64() < 0.01 { // rare flap
			cur, _ := mib.Get(OIDIfTable.Append(colIfOperStatus, i))
			next := int64(1)
			if cur.Int == 1 {
				next = 2
			}
			mib.Adjust(OIDIfTable.Append(colIfOperStatus, i), next-cur.Int)
		}
	}
	mib.Adjust(OIDIP.Append(3, 0), d.rng.Int63n(1<<16))
}

// InterfaceStatusOIDs lists the ifOperStatus column, a typical
// status-sweep query set.
func (d *Device) InterfaceStatusOIDs() []OID {
	out := make([]OID, d.ifaces)
	for i := 1; i <= d.ifaces; i++ {
		out[i-1] = OIDIfTable.Append(colIfOperStatus, i)
	}
	return out
}
