package snmp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// ValueType discriminates MIB value encodings (a pragmatic subset of
// SNMPv1's ASN.1 types).
type ValueType int

// Value types.
const (
	TypeString ValueType = iota
	TypeInteger
	TypeCounter
	TypeGauge
	TypeTimeTicks
)

// String returns the type name.
func (t ValueType) String() string {
	switch t {
	case TypeString:
		return "OCTET STRING"
	case TypeInteger:
		return "INTEGER"
	case TypeCounter:
		return "Counter"
	case TypeGauge:
		return "Gauge"
	case TypeTimeTicks:
		return "TimeTicks"
	default:
		return fmt.Sprintf("ValueType(%d)", int(t))
	}
}

// Value is one MIB object value.
type Value struct {
	Type ValueType
	Str  string
	Int  int64
}

// StringValue builds an OCTET STRING value.
func StringValue(s string) Value { return Value{Type: TypeString, Str: s} }

// IntValue builds an INTEGER value.
func IntValue(n int64) Value { return Value{Type: TypeInteger, Int: n} }

// CounterValue builds a Counter value.
func CounterValue(n int64) Value { return Value{Type: TypeCounter, Int: n} }

// GaugeValue builds a Gauge value.
func GaugeValue(n int64) Value { return Value{Type: TypeGauge, Int: n} }

// TimeTicksValue builds a TimeTicks value.
func TimeTicksValue(n int64) Value { return Value{Type: TypeTimeTicks, Int: n} }

// Render returns the value in its textual form, as an agent reports it.
func (v Value) Render() string {
	if v.Type == TypeString {
		return v.Str
	}
	return strconv.FormatInt(v.Int, 10)
}

// EncodedLen approximates the value's SNMPv1 BER encoding length, used by
// the PDU size model.
func (v Value) EncodedLen() int {
	if v.Type == TypeString {
		return 2 + len(v.Str)
	}
	// Integers: tag + length + up to 8 bytes, roughly proportional.
	n := v.Int
	bytes := 1
	for n > 0xff || n < -0xff {
		n >>= 8
		bytes++
	}
	return 2 + bytes
}

// Errors reported by MIB operations.
var (
	ErrNoSuchName = errors.New("snmp: noSuchName")
	ErrEndOfMIB   = errors.New("snmp: end of MIB view")
	ErrReadOnly   = errors.New("snmp: read-only object")
)

// binding is one stored object.
type binding struct {
	oid      OID
	value    Value
	readOnly bool
}

// MIB is a management information base: an ordered map from OIDs to values.
// It is safe for concurrent use (the device workload mutates counters while
// agents serve queries).
type MIB struct {
	mu       sync.RWMutex
	bindings []binding // sorted by OID
}

// NewMIB returns an empty MIB.
func NewMIB() *MIB {
	return &MIB{}
}

// search finds the index of oid, or the insertion point.
func (m *MIB) search(oid OID) (int, bool) {
	i := sort.Search(len(m.bindings), func(i int) bool {
		return m.bindings[i].oid.Compare(oid) >= 0
	})
	if i < len(m.bindings) && m.bindings[i].oid.Equal(oid) {
		return i, true
	}
	return i, false
}

// Define installs (or replaces) an object. readOnly objects refuse Set.
func (m *MIB) Define(oid OID, v Value, readOnly bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := binding{oid: oid.Clone(), value: v, readOnly: readOnly}
	if i, found := m.search(oid); found {
		m.bindings[i] = b
	} else {
		m.bindings = append(m.bindings, binding{})
		copy(m.bindings[i+1:], m.bindings[i:])
		m.bindings[i] = b
	}
}

// Get returns the value bound to oid.
func (m *MIB) Get(oid OID) (Value, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i, found := m.search(oid); found {
		return m.bindings[i].value, nil
	}
	return Value{}, fmt.Errorf("%w: %s", ErrNoSuchName, oid)
}

// Next returns the first binding with an OID strictly after oid, the
// GetNext primitive that drives MIB walks.
func (m *MIB) Next(oid OID) (OID, Value, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	i, found := m.search(oid)
	if found {
		i++
	}
	if i >= len(m.bindings) {
		return nil, Value{}, ErrEndOfMIB
	}
	return m.bindings[i].oid.Clone(), m.bindings[i].value, nil
}

// Set updates a writable object's value in place. The object must exist
// and its type is preserved (SNMPv1 set semantics for managed objects).
func (m *MIB) Set(oid OID, v Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, found := m.search(oid)
	if !found {
		return fmt.Errorf("%w: %s", ErrNoSuchName, oid)
	}
	if m.bindings[i].readOnly {
		return fmt.Errorf("%w: %s", ErrReadOnly, oid)
	}
	m.bindings[i].value = v
	return nil
}

// ForceSet updates any existing object, bypassing the read-only flag: the
// device's own instrumentation path (a manager's Set still respects
// read-only).
func (m *MIB) ForceSet(oid OID, v Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, found := m.search(oid)
	if !found {
		return fmt.Errorf("%w: %s", ErrNoSuchName, oid)
	}
	m.bindings[i].value = v
	return nil
}

// Adjust adds delta to a numeric object (counters and gauges), bypassing
// the read-only flag: it models the device itself updating its
// instrumentation.
func (m *MIB) Adjust(oid OID, delta int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	i, found := m.search(oid)
	if !found {
		return fmt.Errorf("%w: %s", ErrNoSuchName, oid)
	}
	if m.bindings[i].value.Type == TypeString {
		return fmt.Errorf("snmp: cannot adjust string object %s", oid)
	}
	m.bindings[i].value.Int += delta
	return nil
}

// Walk visits every binding under root in MIB order.
func (m *MIB) Walk(root OID, f func(OID, Value) error) error {
	m.mu.RLock()
	start, _ := m.search(root)
	snapshot := make([]binding, 0)
	for i := start; i < len(m.bindings) && m.bindings[i].oid.HasPrefix(root); i++ {
		snapshot = append(snapshot, m.bindings[i])
	}
	m.mu.RUnlock()
	for _, b := range snapshot {
		if err := f(b.oid.Clone(), b.value); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of bound objects.
func (m *MIB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.bindings)
}
