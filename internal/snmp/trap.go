package snmp

import (
	"fmt"
	"sync"
	"time"
)

// TrapKind classifies asynchronous device notifications (SNMPv1 trap
// generic types, pragmatically reduced).
type TrapKind int

// Trap kinds.
const (
	// TrapLinkDown signals an interface going down — a significant event
	// a manager must act on.
	TrapLinkDown TrapKind = iota
	// TrapLinkUp signals recovery.
	TrapLinkUp
	// TrapThreshold signals a counter crossing a soft threshold — noisy,
	// rarely actionable.
	TrapThreshold
	// TrapHeartbeat is periodic device chatter — pure noise.
	TrapHeartbeat
)

// String returns the trap name.
func (k TrapKind) String() string {
	switch k {
	case TrapLinkDown:
		return "linkDown"
	case TrapLinkUp:
		return "linkUp"
	case TrapThreshold:
		return "threshold"
	case TrapHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("TrapKind(%d)", int(k))
	}
}

// Significant reports whether a manager must be told about this trap
// promptly (the on-site filtering criterion).
func (k TrapKind) Significant() bool {
	return k == TrapLinkDown || k == TrapLinkUp
}

// Trap is one asynchronous device notification.
type Trap struct {
	// Device is the emitting device's name.
	Device string
	// Kind classifies the event.
	Kind TrapKind
	// Seq orders traps within a device.
	Seq int
	// Round is the workload round that produced the trap.
	Round int
	// Detail is the human-readable payload (e.g. "eth2 down").
	Detail string
}

// String renders the trap compactly.
func (t Trap) String() string {
	return fmt.Sprintf("%s#%d %s: %s", t.Device, t.Seq, t.Kind, t.Detail)
}

// trapBuffer accumulates a device's pending notifications.
type trapBuffer struct {
	mu     sync.Mutex
	traps  []Trap
	seq    int
	round  int
	total  int
	signif int
}

// emit appends a trap.
func (b *trapBuffer) emit(device string, kind TrapKind, detail string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	b.total++
	if kind.Significant() {
		b.signif++
	}
	b.traps = append(b.traps, Trap{
		Device: device, Kind: kind, Seq: b.seq, Round: b.round, Detail: detail,
	})
}

// TakeTraps drains and returns the device's pending notifications. The
// centralized manager's forwarder and the on-site monitoring naplet both
// consume this stream (each experiment uses its own device set, so the
// stream has one consumer).
func (d *Device) TakeTraps() []Trap {
	d.trapsBuf.mu.Lock()
	defer d.trapsBuf.mu.Unlock()
	out := d.trapsBuf.traps
	d.trapsBuf.traps = nil
	return out
}

// TrapRound reports the latest completed workload round.
func (d *Device) TrapRound() int {
	d.trapsBuf.mu.Lock()
	defer d.trapsBuf.mu.Unlock()
	return d.trapsBuf.round
}

// TrapTotals reports lifetime (total, significant) trap counts.
func (d *Device) TrapTotals() (total, significant int) {
	d.trapsBuf.mu.Lock()
	defer d.trapsBuf.mu.Unlock()
	return d.trapsBuf.total, d.trapsBuf.signif
}

// TickEvents advances the workload one round and emits the round's traps:
// a heartbeat every round, frequent threshold noise, and occasional
// significant link flaps. The mix is deterministic under the device seed.
func (d *Device) TickEvents(dt time.Duration) {
	d.Tick(dt)
	d.mu.Lock()
	rng := d.rng
	name := d.Name
	ifaces := d.ifaces
	d.mu.Unlock()

	d.trapsBuf.mu.Lock()
	d.trapsBuf.round++
	round := d.trapsBuf.round
	d.trapsBuf.mu.Unlock()
	_ = round

	d.trapsBuf.emit(name, TrapHeartbeat, "alive")
	// Threshold noise: ~2 per round on a busy device.
	for i := 0; i < ifaces; i++ {
		if rng.Float64() < 0.5 {
			d.trapsBuf.emit(name, TrapThreshold, fmt.Sprintf("eth%d util high", i))
		}
	}
	// Significant flaps: rare.
	if rng.Float64() < 0.08 {
		iface := rng.Intn(ifaces)
		d.trapsBuf.emit(name, TrapLinkDown, fmt.Sprintf("eth%d down", iface))
		if rng.Float64() < 0.5 {
			d.trapsBuf.emit(name, TrapLinkUp, fmt.Sprintf("eth%d up", iface))
		}
	}
}
