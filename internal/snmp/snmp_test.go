package snmp

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseOIDRoundTrip(t *testing.T) {
	cases := []string{"1", "1.3.6.1.2.1.1.1.0", "0.0"}
	for _, in := range cases {
		oid, err := ParseOID(in)
		if err != nil {
			t.Fatalf("ParseOID(%q): %v", in, err)
		}
		if oid.String() != in {
			t.Fatalf("round trip %q -> %q", in, oid.String())
		}
	}
	if oid, err := ParseOID(".1.3"); err != nil || oid.String() != "1.3" {
		t.Fatalf("leading dot: %v %v", oid, err)
	}
	for _, bad := range []string{"", "1..2", "a.b", "1.-2"} {
		if _, err := ParseOID(bad); !errors.Is(err, ErrBadOID) {
			t.Errorf("ParseOID(%q) = %v, want ErrBadOID", bad, err)
		}
	}
}

func TestOIDCompareAndPrefix(t *testing.T) {
	a := MustParseOID("1.3.6")
	b := MustParseOID("1.3.6.1")
	c := MustParseOID("1.3.7")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Fatal("prefix ordering")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Fatal("arc ordering")
	}
	if a.Compare(a.Clone()) != 0 || !a.Equal(a.Clone()) {
		t.Fatal("equality")
	}
	if !b.HasPrefix(a) || a.HasPrefix(b) {
		t.Fatal("HasPrefix")
	}
	d := a.Append(9)
	if d.String() != "1.3.6.9" || a.String() != "1.3.6" {
		t.Fatal("Append must not mutate")
	}
}

func TestMIBGetSetDefine(t *testing.T) {
	m := NewMIB()
	oid := MustParseOID("1.1.1.0")
	m.Define(oid, StringValue("v1"), false)
	v, err := m.Get(oid)
	if err != nil || v.Str != "v1" {
		t.Fatalf("Get: %v %v", v, err)
	}
	if err := m.Set(oid, StringValue("v2")); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Get(oid)
	if v.Str != "v2" {
		t.Fatal("Set did not apply")
	}
	if _, err := m.Get(MustParseOID("9.9")); !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("missing: %v", err)
	}
	if err := m.Set(MustParseOID("9.9"), IntValue(1)); !errors.Is(err, ErrNoSuchName) {
		t.Fatalf("set missing: %v", err)
	}
	ro := MustParseOID("1.1.2.0")
	m.Define(ro, IntValue(7), true)
	if err := m.Set(ro, IntValue(8)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only: %v", err)
	}
	if err := m.Adjust(ro, 5); err != nil {
		t.Fatalf("device-side adjust must bypass read-only: %v", err)
	}
	if v, _ := m.Get(ro); v.Int != 12 {
		t.Fatalf("adjust: %v", v)
	}
	if err := m.Adjust(MustParseOID("1.1.1.0"), 1); err == nil {
		t.Fatal("adjusting a string must fail")
	}
}

func TestMIBNextOrder(t *testing.T) {
	m := NewMIB()
	oids := []string{"1.3.6.1.2.1.1.1.0", "1.3.6.1.2.1.1.3.0", "1.3.6.1.2.1.2.1.0", "1.3.6.1.2.1.2.2.1.1.1"}
	// Define out of order.
	for _, i := range []int{2, 0, 3, 1} {
		m.Define(MustParseOID(oids[i]), IntValue(int64(i)), true)
	}
	// GetNext walk visits in MIB order.
	cur := MustParseOID("1")
	var walk []string
	for {
		next, _, err := m.Next(cur)
		if errors.Is(err, ErrEndOfMIB) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		walk = append(walk, next.String())
		cur = next
	}
	if !sort.StringsAreSorted(nil) { // placate linters; real check below
		t.Fatal("unreachable")
	}
	for i, want := range oids {
		if walk[i] != want {
			t.Fatalf("walk[%d] = %s, want %s (walk=%v)", i, walk[i], want, walk)
		}
	}
}

func TestMIBWalkSubtree(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "r1", Interfaces: 2})
	var got []string
	err := d.Agent.MIB().Walk(OIDIfTable, func(oid OID, v Value) error {
		got = append(got, oid.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 columns × 2 interfaces.
	if len(got) != 12 {
		t.Fatalf("ifTable walk = %d entries: %v", len(got), got)
	}
	for _, s := range got {
		if !strings.HasPrefix(s, OIDIfTable.String()) {
			t.Fatalf("walk escaped subtree: %s", s)
		}
	}
}

func TestAgentServeOps(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "r1"})
	a := d.Agent

	// Get.
	resp := a.Serve(Request{Community: "public", Op: OpGet, Bindings: []VarBind{{OID: OIDSysName}}})
	if resp.Err != "" || resp.Bindings[0].Value.Str != "r1" {
		t.Fatalf("get: %+v", resp)
	}
	// GetNext from the system subtree start.
	resp = a.Serve(Request{Community: "public", Op: OpGetNext, Bindings: []VarBind{{OID: OIDSystem}}})
	if resp.Err != "" || !resp.Bindings[0].OID.Equal(OIDSysDescr) {
		t.Fatalf("get-next: %+v", resp)
	}
	// Set a writable object.
	resp = a.Serve(Request{Community: "public", Op: OpSet, Bindings: []VarBind{{OID: OIDSysName, Value: StringValue("renamed")}}})
	if resp.Err != "" {
		t.Fatalf("set: %+v", resp)
	}
	if v, _ := a.Get("public", OIDSysName); v.Str != "renamed" {
		t.Fatal("set not applied")
	}
	// Set a read-only object fails.
	resp = a.Serve(Request{Community: "public", Op: OpSet, Bindings: []VarBind{{OID: OIDSysDescr, Value: StringValue("x")}}})
	if !strings.Contains(resp.Err, "read-only") {
		t.Fatalf("read-only set: %+v", resp)
	}
	// Unknown OID.
	resp = a.Serve(Request{Community: "public", Op: OpGet, Bindings: []VarBind{{OID: MustParseOID("9.9.9")}}})
	if !strings.Contains(resp.Err, "noSuchName") {
		t.Fatalf("noSuchName: %+v", resp)
	}
}

func TestAgentCommunityCheck(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "r1", Community: "secret"})
	resp := d.Agent.Serve(Request{Community: "public", Op: OpGet, Bindings: []VarBind{{OID: OIDSysName}}})
	if !strings.Contains(resp.Err, "community") {
		t.Fatalf("community check: %+v", resp)
	}
	if _, err := d.Agent.WalkSubtree("public", OIDSystem); !errors.Is(err, ErrBadCommunity) {
		t.Fatalf("walk community: %v", err)
	}
	if _, err := d.Agent.Get("secret", OIDSysName); err != nil {
		t.Fatalf("correct community: %v", err)
	}
}

func TestDeviceTickEvolvesCounters(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "r1", Interfaces: 2, Seed: 42})
	before, _ := d.Agent.Get("public", OIDIfTable.Append(colIfInOctets, 1))
	up0, _ := d.Agent.Get("public", OIDSysUpTime)
	for i := 0; i < 10; i++ {
		d.Tick(time.Second)
	}
	after, _ := d.Agent.Get("public", OIDIfTable.Append(colIfInOctets, 1))
	up1, _ := d.Agent.Get("public", OIDSysUpTime)
	if after.Int <= before.Int {
		t.Fatal("ifInOctets must grow under workload")
	}
	if up1.Int != up0.Int+1000 { // 10 s = 1000 ticks
		t.Fatalf("uptime ticks: %d -> %d", up0.Int, up1.Int)
	}
}

func TestDeviceDeterministicWorkload(t *testing.T) {
	run := func() int64 {
		d := NewDevice(DeviceConfig{Name: "r1", Seed: 7})
		for i := 0; i < 20; i++ {
			d.Tick(time.Second)
		}
		v, _ := d.Agent.Get("public", OIDIfTable.Append(colIfInOctets, 1))
		return v.Int
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the workload")
	}
}

func TestExtraVars(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "r1", ExtraVars: 16})
	for i := 0; i < 16; i++ {
		v, err := d.Agent.Get("public", ExtraVarOID(i))
		if err != nil || v.Int != int64(i) {
			t.Fatalf("extra var %d: %v %v", i, v, err)
		}
	}
	if _, err := d.Agent.Get("public", ExtraVarOID(16)); err == nil {
		t.Fatal("var 16 must not exist")
	}
}

func TestEstimateBERSize(t *testing.T) {
	small := EstimateBERSize("public", []VarBind{{OID: OIDSysDescr}})
	large := EstimateBERSize("public", []VarBind{
		{OID: OIDSysDescr, Value: StringValue(strings.Repeat("x", 100))},
	})
	if small <= 25 || large <= small+90 {
		t.Fatalf("size model: small=%d large=%d", small, large)
	}
}

func TestValueRenderAndTypes(t *testing.T) {
	if StringValue("x").Render() != "x" || IntValue(7).Render() != "7" {
		t.Fatal("render")
	}
	if CounterValue(1).Type != TypeCounter || GaugeValue(1).Type != TypeGauge || TimeTicksValue(1).Type != TypeTimeTicks {
		t.Fatal("constructors")
	}
	names := []string{TypeString.String(), TypeInteger.String(), TypeCounter.String(), TypeGauge.String(), TypeTimeTicks.String()}
	for _, n := range names {
		if n == "" || strings.HasPrefix(n, "ValueType") {
			t.Fatalf("type name %q", n)
		}
	}
	if ValueType(9).String() != "ValueType(9)" || PDUOp(9).String() != "PDUOp(9)" {
		t.Fatal("unknown formatting")
	}
	if OpGet.String() != "get" || OpGetNext.String() != "get-next" || OpSet.String() != "set" {
		t.Fatal("op names")
	}
}

func TestPropMIBNextTotalOrder(t *testing.T) {
	// From any starting point, chained Next visits strictly increasing OIDs
	// and terminates.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMIB()
		n := 1 + r.Intn(30)
		for i := 0; i < n; i++ {
			arcs := make(OID, 1+r.Intn(6))
			for j := range arcs {
				arcs[j] = r.Intn(5)
			}
			m.Define(arcs, IntValue(int64(i)), true)
		}
		cur := OID{0}
		prev := OID(nil)
		steps := 0
		for {
			next, _, err := m.Next(cur)
			if errors.Is(err, ErrEndOfMIB) {
				return steps <= m.Len()
			}
			if err != nil {
				return false
			}
			if prev != nil && next.Compare(prev) <= 0 {
				return false
			}
			prev, cur = next, next
			steps++
			if steps > m.Len()+1 {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrapKinds(t *testing.T) {
	if !TrapLinkDown.Significant() || !TrapLinkUp.Significant() {
		t.Fatal("link events are significant")
	}
	if TrapThreshold.Significant() || TrapHeartbeat.Significant() {
		t.Fatal("noise must not be significant")
	}
	names := map[TrapKind]string{
		TrapLinkDown: "linkDown", TrapLinkUp: "linkUp",
		TrapThreshold: "threshold", TrapHeartbeat: "heartbeat",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if TrapKind(9).String() != "TrapKind(9)" {
		t.Fatal("unknown kind")
	}
}

func TestTickEventsEmitsAndDrains(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "r1", Seed: 5})
	for i := 0; i < 20; i++ {
		d.TickEvents(time.Second)
	}
	if d.TrapRound() != 20 {
		t.Fatalf("round = %d", d.TrapRound())
	}
	traps := d.TakeTraps()
	if len(traps) < 20 {
		t.Fatalf("expected at least one heartbeat per round, got %d traps", len(traps))
	}
	total, signif := d.TrapTotals()
	if total != len(traps) {
		t.Fatalf("totals %d != drained %d", total, len(traps))
	}
	gotSignif := 0
	seqs := map[int]bool{}
	for _, tr := range traps {
		if tr.Device != "r1" {
			t.Fatalf("trap device = %q", tr.Device)
		}
		if tr.Kind.Significant() {
			gotSignif++
		}
		if seqs[tr.Seq] {
			t.Fatalf("duplicate seq %d", tr.Seq)
		}
		seqs[tr.Seq] = true
	}
	if gotSignif != signif {
		t.Fatalf("significant count %d != %d", gotSignif, signif)
	}
	// Drained: a second take is empty.
	if len(d.TakeTraps()) != 0 {
		t.Fatal("TakeTraps must drain")
	}
	if tr := traps[0]; tr.String() == "" {
		t.Fatal("trap String")
	}
}

func TestTickEventsDeterministic(t *testing.T) {
	run := func() (int, int) {
		d := NewDevice(DeviceConfig{Name: "r1", Seed: 11})
		for i := 0; i < 30; i++ {
			d.TickEvents(time.Second)
		}
		return d.TrapTotals()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic workload: (%d,%d) vs (%d,%d)", t1, s1, t2, s2)
	}
	if s1 == 0 || s1 >= t1 {
		t.Fatalf("workload mix implausible: %d significant of %d", s1, t1)
	}
}
