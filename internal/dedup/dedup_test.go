package dedup

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }
func window(max int, ttl time.Duration) (*Window, *fakeClock) {
	c := newFakeClock()
	return NewWindow(max, ttl, c.Now), c
}

func TestSeenAfterMark(t *testing.T) {
	w, _ := window(8, time.Minute)
	if w.Seen("a") {
		t.Fatal("unmarked id reported seen")
	}
	w.Mark("a")
	if !w.Seen("a") {
		t.Fatal("marked id not seen")
	}
	if w.Seen("b") {
		t.Fatal("unrelated id reported seen")
	}
}

func TestSeenOrMark(t *testing.T) {
	w, _ := window(8, time.Minute)
	if w.SeenOrMark("a") {
		t.Fatal("first SeenOrMark must report unseen")
	}
	if !w.SeenOrMark("a") {
		t.Fatal("second SeenOrMark must report seen")
	}
}

func TestTTLExpiry(t *testing.T) {
	cases := []struct {
		name    string
		age     time.Duration
		wantHit bool
	}{
		{"fresh", time.Second, true},
		{"at-ttl", time.Minute, true},
		{"just-expired", time.Minute + time.Nanosecond, false},
		{"long-expired", time.Hour, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, clk := window(8, time.Minute)
			w.Mark("a")
			clk.advance(tc.age)
			if got := w.Seen("a"); got != tc.wantHit {
				t.Fatalf("Seen after %v = %v, want %v", tc.age, got, tc.wantHit)
			}
		})
	}
}

func TestRemarkRefreshesTTL(t *testing.T) {
	w, clk := window(8, time.Minute)
	w.Mark("a")
	clk.advance(45 * time.Second)
	w.Mark("a") // refresh
	clk.advance(45 * time.Second)
	if !w.Seen("a") {
		t.Fatal("re-mark must refresh the entry's TTL")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	w, _ := window(3, time.Hour)
	for i := 0; i < 3; i++ {
		w.Mark(fmt.Sprintf("id%d", i))
	}
	w.Mark("id3") // evicts id0
	if w.Seen("id0") {
		t.Fatal("oldest entry must be evicted at capacity")
	}
	for i := 1; i <= 3; i++ {
		if !w.Seen(fmt.Sprintf("id%d", i)) {
			t.Fatalf("id%d evicted prematurely", i)
		}
	}
	if got := w.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestExpiredEvictedBeforeCapacity(t *testing.T) {
	// Expired entries are reclaimed first: marking a new id when the window
	// is full of stale entries must not drop a live one.
	w, clk := window(3, time.Minute)
	w.Mark("stale1")
	w.Mark("stale2")
	clk.advance(2 * time.Minute)
	w.Mark("live1")
	w.Mark("live2") // would hit the cap without expiry-first eviction
	if !w.Seen("live1") || !w.Seen("live2") {
		t.Fatal("live entries evicted while stale ones were reclaimable")
	}
}

func TestZeroValuesUseDefaults(t *testing.T) {
	w := NewWindow(0, 0, nil)
	w.Mark("a")
	if !w.Seen("a") {
		t.Fatal("default-configured window must work")
	}
}
