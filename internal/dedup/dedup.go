// Package dedup provides a bounded, TTL-evicting window of recently seen
// identifiers: the idempotency primitive behind exactly-once effects over
// an at-least-once network.
//
// The navigator remembers accepted transfer IDs so a replayed TRANSFER
// frame (a retry after a lost acknowledgement, or an injected duplicate)
// cannot land the same naplet twice; the messenger remembers delivered
// message IDs so a duplicated post is re-confirmed instead of enqueued
// again. Both need the same structure: membership over the recent past,
// with memory bounded by a capacity and an age limit so a long-lived
// server does not accumulate every identifier it ever saw.
package dedup

import (
	"sync"
	"time"
)

// Window remembers up to max identifiers for at most ttl. It is safe for
// concurrent use.
type Window struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	clock   func() time.Time
	entries map[string]time.Time
	order   []string // insertion order, oldest first
}

// Default bounds applied when NewWindow receives zero values.
const (
	DefaultMax = 4096
	DefaultTTL = 5 * time.Minute
)

// NewWindow builds a window holding at most max identifiers for at most
// ttl. max ≤ 0 and ttl ≤ 0 select the package defaults; nil clock means
// time.Now.
func NewWindow(max int, ttl time.Duration, clock func() time.Time) *Window {
	if max <= 0 {
		max = DefaultMax
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if clock == nil {
		clock = time.Now
	}
	return &Window{
		max:     max,
		ttl:     ttl,
		clock:   clock,
		entries: make(map[string]time.Time),
	}
}

// Seen reports whether id was marked within the window's bounds. Expired
// entries do not count (and are dropped lazily by the next Mark).
func (w *Window) Seen(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	at, ok := w.entries[id]
	if !ok {
		return false
	}
	if w.clock().Sub(at) > w.ttl {
		return false
	}
	return true
}

// Mark records id as seen now, evicting expired entries and — when the
// window is full — the oldest entry. Re-marking a present id refreshes its
// timestamp without growing the window.
func (w *Window) Mark(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.clock()
	w.evictLocked(now)
	if _, ok := w.entries[id]; ok {
		w.entries[id] = now
		return
	}
	if len(w.entries) >= w.max {
		w.dropOldestLocked()
	}
	w.entries[id] = now
	w.order = append(w.order, id)
}

// SeenOrMark atomically checks and marks: it returns true when id was
// already in the window, and marks it otherwise.
func (w *Window) SeenOrMark(id string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.clock()
	if at, ok := w.entries[id]; ok && now.Sub(at) <= w.ttl {
		return true
	}
	w.evictLocked(now)
	if _, ok := w.entries[id]; ok {
		// Present but expired: refresh in place.
		w.entries[id] = now
		return false
	}
	if len(w.entries) >= w.max {
		w.dropOldestLocked()
	}
	w.entries[id] = now
	w.order = append(w.order, id)
	return false
}

// Keys returns the retained, unexpired identifiers in insertion order, for
// persisting the window across a restart. Restore by Marking each key into
// a fresh window.
func (w *Window) Keys() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.clock()
	out := make([]string, 0, len(w.entries))
	seen := make(map[string]bool, len(w.entries))
	for _, id := range w.order {
		at, ok := w.entries[id]
		if !ok || seen[id] || now.Sub(at) > w.ttl {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// Len reports the number of retained identifiers (including any expired
// entries not yet evicted).
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// evictLocked drops entries older than ttl from the front of the order
// queue. Refreshed entries may appear out of order; those are skipped here
// and reaped when their queue position ages out.
func (w *Window) evictLocked(now time.Time) {
	for len(w.order) > 0 {
		id := w.order[0]
		at, ok := w.entries[id]
		if ok && now.Sub(at) <= w.ttl {
			return
		}
		w.order = w.order[1:]
		if ok {
			delete(w.entries, id)
		}
	}
}

// dropOldestLocked removes the single oldest entry to make room.
func (w *Window) dropOldestLocked() {
	for len(w.order) > 0 {
		id := w.order[0]
		w.order = w.order[1:]
		if _, ok := w.entries[id]; ok {
			delete(w.entries, id)
			return
		}
	}
}
