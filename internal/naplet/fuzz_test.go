package naplet

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the record decoder: it must
// never panic or over-allocate, and any record it accepts must re-encode
// deterministically (encode(decode(x)) is a fixed point).
func FuzzDecodeRecord(f *testing.F) {
	golden := goldenRecord(f).AppendBinary(nil)
	f.Add(golden)
	f.Add(golden[:len(golden)/2])
	f.Add(golden[:3])
	corrupt := append([]byte(nil), golden...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("NR\x01"))
	f.Add([]byte{'N', 'R', 1, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecordBinary(data)
		if err != nil {
			return
		}
		enc := rec.AppendBinary(nil)
		if len(enc) != rec.EncodedSize() {
			t.Fatalf("EncodedSize %d, encoded %d", rec.EncodedSize(), len(enc))
		}
		rec2, err := DecodeRecordBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if re := rec2.AppendBinary(nil); !bytes.Equal(enc, re) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}

// FuzzDecodeMail is the same property for the message codec.
func FuzzDecodeMail(f *testing.F) {
	golden := goldenMessage(f).AppendBinary(nil)
	f.Add(golden)
	f.Add(golden[:len(golden)/2])
	corrupt := append([]byte(nil), golden...)
	corrupt[0] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, rest, err := DecodeMessageBinary(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest %d exceeds input %d", len(rest), len(data))
		}
		enc := msg.AppendBinary(nil)
		if len(enc) != msg.EncodedSize() {
			t.Fatalf("EncodedSize %d, encoded %d", msg.EncodedSize(), len(enc))
		}
		msg2, rest2, err := DecodeMessageBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if re := msg2.AppendBinary(nil); !bytes.Equal(enc, re) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
