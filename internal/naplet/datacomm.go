package naplet

import (
	"context"
	"fmt"
	"time"
)

// AllExchange is the paper's DataComm operator (§3, Example 2): "a generic
// operator for collective communications between the naplets". The calling
// naplet posts body to every peer in its address book, then receives one
// message from each — an all-to-all exchange that synchronizes a clone
// group between visits.
//
// When a Par itinerary forks, the runtime cross-populates each member's
// address book with its siblings, so an itinerary post-action that calls
// AllExchange works without any out-of-band setup. The received messages
// are returned in arrival order.
//
// Peers may still be mid-flight when the posts go out; the post-office
// holds or forwards as needed (§4.2), so the exchange is reliable as long
// as every member of the group eventually performs it the same number of
// times.
func AllExchange(ctx *Context, subject string, body []byte) ([]Message, error) {
	peers := ctx.AddressBook().Entries()
	if len(peers) == 0 {
		return nil, nil
	}
	sendCtx, cancel := context.WithTimeout(ctx.Cancel, 60*time.Second)
	defer cancel()
	for _, peer := range peers {
		if err := ctx.Messenger.Post(sendCtx, peer.NapletID, subject, body); err != nil {
			return nil, fmt.Errorf("naplet: AllExchange post to %s: %w", peer.NapletID, err)
		}
	}
	msgs := make([]Message, 0, len(peers))
	for len(msgs) < len(peers) {
		msg, err := ctx.Messenger.Receive(sendCtx)
		if err != nil {
			return msgs, fmt.Errorf("naplet: AllExchange receive (%d of %d): %w", len(msgs), len(peers), err)
		}
		msgs = append(msgs, msg)
	}
	return msgs, nil
}
