package naplet

import (
	"fmt"
	"time"

	"repro/internal/id"
)

// MessageClass distinguishes the two message types of §2.2: "There are two
// types of messages: System and User. System messages are used for naplet
// control (e.g. callback, terminate, suspend, and resume); user messages
// are for communicating data between naplets."
type MessageClass int

// Message classes.
const (
	// UserMessage carries application data between naplets; delivered to
	// the target's mailbox.
	UserMessage MessageClass = iota
	// SystemMessage carries a control verb; the messenger casts an
	// interrupt onto the running naplet's thread.
	SystemMessage
)

// String returns the class name.
func (c MessageClass) String() string {
	switch c {
	case UserMessage:
		return "user"
	case SystemMessage:
		return "system"
	default:
		return fmt.Sprintf("MessageClass(%d)", int(c))
	}
}

// ControlVerb enumerates the system-message controls named by the paper.
type ControlVerb string

// Control verbs (§2.2).
const (
	ControlCallback  ControlVerb = "callback"
	ControlTerminate ControlVerb = "terminate"
	ControlSuspend   ControlVerb = "suspend"
	ControlResume    ControlVerb = "resume"
)

// Message is one inter-naplet (or owner-to-naplet) message.
type Message struct {
	// ID identifies the message end to end, stable across retries and
	// forwarding legs, so a duplicated delivery can be recognized and
	// re-confirmed instead of enqueued twice. Empty on messages from
	// senders predating the field; those are delivered without dedup.
	ID string
	// From identifies the sender; zero for owner/manager-originated
	// control messages.
	From id.NapletID
	// To identifies the target naplet.
	To id.NapletID
	// Class is User or System.
	Class MessageClass
	// Control carries the verb of a system message.
	Control ControlVerb
	// Subject is a short application-defined tag.
	Subject string
	// Body is the opaque payload of a user message.
	Body []byte
	// SentAt is the send timestamp at the origin server.
	SentAt time.Time
}

// IsSystem reports whether the message is a control message.
func (m Message) IsSystem() bool { return m.Class == SystemMessage }

// String summarizes the message for logs.
func (m Message) String() string {
	if m.IsSystem() {
		return fmt.Sprintf("system[%s] %s -> %s", m.Control, m.From, m.To)
	}
	return fmt.Sprintf("user[%s] %s -> %s (%d bytes)", m.Subject, m.From, m.To, len(m.Body))
}
