package naplet

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/itinerary"
)

var (
	t0  = time.Date(2001, 5, 12, 17, 27, 20, 0, time.UTC)
	nid = id.MustNew("czxu", "home.example", t0)
)

func testRecord(t *testing.T) *Record {
	t.Helper()
	ring := cred.NewKeyRing()
	ring.Register("czxu", []byte("k"))
	c, err := ring.Issue(nid, "test.Agent", nil, t0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	itin := itinerary.MustNew(itinerary.SeqVisits([]string{"s1", "s2"}, ""))
	return NewRecord(nid, c, "test.Agent", "home.example", itin)
}

func TestNewRecordDefaults(t *testing.T) {
	r := testRecord(t)
	if r.State == nil || r.Book == nil || r.Log == nil {
		t.Fatal("NewRecord must initialize containers")
	}
	if r.Codebase != "test.Agent" || r.Home != "home.example" {
		t.Fatalf("record fields: %+v", r)
	}
}

func TestRecordGobRoundTrip(t *testing.T) {
	r := testRecord(t)
	r.State.SetPrivate("k", 42)
	r.Book.Add(nid, "s9")
	r.Log.RecordArrival("home.example", t0)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		t.Fatal(err)
	}
	got := new(Record)
	if err := gob.NewDecoder(&buf).Decode(got); err != nil {
		t.Fatal(err)
	}
	if !got.ID.Equal(r.ID) {
		t.Fatalf("ID mismatch: %v vs %v", got.ID, r.ID)
	}
	if v, err := got.State.Get("k"); err != nil || v.(int) != 42 {
		t.Fatalf("state lost: %v %v", v, err)
	}
	if !got.Book.Knows(nid) {
		t.Fatal("address book lost")
	}
	if got.Log.Len() != 1 {
		t.Fatal("navigation log lost")
	}
	if got.Itin.Done() {
		t.Fatal("itinerary lost")
	}
	if want := r.Itin.String(); got.Itin.String() != want {
		t.Fatalf("itinerary = %s, want %s", got.Itin.String(), want)
	}
}

func TestCloneFor(t *testing.T) {
	r := testRecord(t)
	r.State.SetPrivate("shared", "v")
	r.Book.Add(nid, "s1")
	r.Log.RecordArrival("home.example", t0)

	ring := cred.NewKeyRing()
	ring.Register("czxu", []byte("k"))
	cloneID, _ := r.ID.Clone(1)
	cc, _ := ring.Reissue(r.Credential, cloneID)

	branch := itinerary.MustNew(itinerary.SeqVisits([]string{"s3"}, ""))
	clone, err := r.CloneFor(1, branch, cc)
	if err != nil {
		t.Fatal(err)
	}
	if !clone.ID.Equal(cloneID) {
		t.Fatalf("clone ID = %v", clone.ID)
	}
	if clone.Home != r.Home || clone.Codebase != r.Codebase {
		t.Fatal("clone must inherit home and codebase")
	}
	// Independent state.
	clone.State.SetPrivate("shared", "mutated")
	if v, _ := r.State.Get("shared"); v.(string) != "v" {
		t.Fatal("clone state mutation leaked to parent")
	}
	// Inherited book, independent afterwards.
	if !clone.Book.Knows(nid) {
		t.Fatal("clone must inherit address book")
	}
	clone.Book.Add(id.MustNew("x", "y", t0), "z")
	if r.Book.Len() != 1 {
		t.Fatal("clone book mutation leaked")
	}
	// Inherited log history.
	if clone.Log.Len() != 1 {
		t.Fatal("clone must inherit navigation history")
	}
	// Branch itinerary.
	if got := clone.Itin.Remaining.Servers(); !reflect.DeepEqual(got, []string{"s3"}) {
		t.Fatalf("clone itinerary = %v", got)
	}
	if _, err := r.CloneFor(0, branch, cc); err == nil {
		t.Fatal("clone index 0 is reserved")
	}
}

func TestAddressBookBasics(t *testing.T) {
	b := NewAddressBook()
	peer1 := id.MustNew("a", "h1", t0)
	peer2 := id.MustNew("b", "h2", t0)
	b.Add(peer1, "s1")
	b.Add(peer2, "s2")
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	e, ok := b.Lookup(peer1)
	if !ok || e.ServerURN != "s1" {
		t.Fatalf("Lookup: %+v %v", e, ok)
	}
	if !b.Knows(peer2) {
		t.Fatal("Knows failed")
	}
	b.Remove(peer1)
	if b.Knows(peer1) {
		t.Fatal("Remove failed")
	}
	if b.Knows(peer1) || b.Len() != 1 {
		t.Fatal("book state after remove")
	}
}

func TestAddressBookUpdateOnlyExisting(t *testing.T) {
	b := NewAddressBook()
	peer := id.MustNew("a", "h", t0)
	b.Update(peer, "s9") // absent: no-op
	if b.Knows(peer) {
		t.Fatal("Update must not create entries")
	}
	b.Add(peer, "s1")
	b.Update(peer, "s2")
	e, _ := b.Lookup(peer)
	if e.ServerURN != "s2" {
		t.Fatalf("Update failed: %+v", e)
	}
}

func TestAddressBookEntriesSorted(t *testing.T) {
	b := NewAddressBook()
	pb := id.MustNew("b", "h", t0)
	pa := id.MustNew("a", "h", t0)
	b.Add(pb, "s2")
	b.Add(pa, "s1")
	es := b.Entries()
	if len(es) != 2 || es[0].NapletID.Owner() != "a" {
		t.Fatalf("Entries not sorted: %+v", es)
	}
}

func TestAddressBookMergeAndClone(t *testing.T) {
	a := NewAddressBook()
	b := NewAddressBook()
	p1 := id.MustNew("p1", "h", t0)
	p2 := id.MustNew("p2", "h", t0)
	a.Add(p1, "s1")
	b.Add(p2, "s2")
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatal("merge failed")
	}
	c := a.Clone()
	c.Remove(p1)
	if !a.Knows(p1) {
		t.Fatal("clone must be independent")
	}
}

func TestAddressBookGob(t *testing.T) {
	b := NewAddressBook()
	p := id.MustNew("p", "h", t0)
	b.Add(p, "s1")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		t.Fatal(err)
	}
	got := NewAddressBook()
	if err := gob.NewDecoder(&buf).Decode(got); err != nil {
		t.Fatal(err)
	}
	e, ok := got.Lookup(p)
	if !ok || e.ServerURN != "s1" {
		t.Fatalf("gob round trip: %+v %v", e, ok)
	}
}

func TestNavigationLogLifecycle(t *testing.T) {
	l := NewNavigationLog()
	l.RecordArrival("s1", t0)
	if _, open := l.Current(); !open {
		t.Fatal("hop must be open after arrival")
	}
	if err := l.RecordDeparture("s1", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, open := l.Current(); open {
		t.Fatal("hop must be closed after departure")
	}
	l.RecordArrival("s2", t0.Add(2*time.Minute))
	l.RecordDeparture("s2", t0.Add(5*time.Minute))

	hops := l.Hops()
	if len(hops) != 2 || hops[0].Server != "s1" || hops[1].Server != "s2" {
		t.Fatalf("hops = %+v", hops)
	}
	if got := l.TotalDwell(); got != 4*time.Minute {
		t.Fatalf("TotalDwell = %v", got)
	}
	if got := l.TotalTransit(); got != time.Minute {
		t.Fatalf("TotalTransit = %v", got)
	}
	if got := l.String(); got != "s1 -> s2" {
		t.Fatalf("String = %q", got)
	}
}

func TestNavigationLogDepartureErrors(t *testing.T) {
	l := NewNavigationLog()
	if err := l.RecordDeparture("s1", t0); err == nil {
		t.Fatal("departure with empty log must fail")
	}
	l.RecordArrival("s1", t0)
	if err := l.RecordDeparture("s2", t0); err == nil {
		t.Fatal("departure from wrong server must fail")
	}
	l.RecordDeparture("s1", t0)
	if err := l.RecordDeparture("s1", t0); err == nil {
		t.Fatal("duplicate departure must fail")
	}
}

func TestNavigationLogCloneIndependent(t *testing.T) {
	l := NewNavigationLog()
	l.RecordArrival("s1", t0)
	c := l.Clone()
	c.RecordDeparture("s1", t0.Add(time.Second))
	c.RecordArrival("s2", t0.Add(2*time.Second))
	if l.Len() != 1 {
		t.Fatal("clone mutation leaked")
	}
	if hop := l.Hops()[0]; !hop.Depart.IsZero() {
		t.Fatal("clone departure leaked into parent")
	}
}

func TestHopDwell(t *testing.T) {
	open := Hop{Server: "s", Arrive: t0}
	if open.Dwell() != 0 {
		t.Fatal("open hop dwell must be 0")
	}
	closed := Hop{Server: "s", Arrive: t0, Depart: t0.Add(3 * time.Second)}
	if closed.Dwell() != 3*time.Second {
		t.Fatalf("dwell = %v", closed.Dwell())
	}
}

func TestMessageString(t *testing.T) {
	sys := Message{Class: SystemMessage, Control: ControlTerminate, To: nid}
	if !sys.IsSystem() {
		t.Fatal("IsSystem")
	}
	if s := sys.String(); s == "" || !bytes.Contains([]byte(s), []byte("terminate")) {
		t.Fatalf("system String = %q", s)
	}
	usr := Message{Class: UserMessage, Subject: "result", Body: []byte("xy"), To: nid}
	if usr.IsSystem() {
		t.Fatal("user message misclassified")
	}
	if s := usr.String(); !bytes.Contains([]byte(s), []byte("result")) {
		t.Fatalf("user String = %q", s)
	}
	if UserMessage.String() != "user" || SystemMessage.String() != "system" {
		t.Fatal("class names")
	}
	if MessageClass(9).String() != "MessageClass(9)" {
		t.Fatal("unknown class formatting")
	}
}

func TestContextAccessors(t *testing.T) {
	r := testRecord(t)
	clock := ClockFunc(func() time.Time { return t0 })
	ctx := &Context{Server: "s1", Record: r, Clock: clock}
	if !ctx.NapletID().Equal(nid) {
		t.Fatal("NapletID")
	}
	if ctx.State() != r.State || ctx.AddressBook() != r.Book || ctx.Log() != r.Log {
		t.Fatal("accessor identity")
	}
	if ctx.Itinerary() != r.Itin {
		t.Fatal("itinerary accessor")
	}
	if !ctx.Now().Equal(t0) {
		t.Fatal("clock not used")
	}
	bare := &Context{Record: r}
	if bare.Now().IsZero() {
		t.Fatal("fallback clock must give wall time")
	}
}
