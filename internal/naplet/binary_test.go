package naplet

import (
	"bytes"
	"encoding/hex"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/state"
)

var update = flag.Bool("update", false, "rewrite golden fixtures in testdata/")

// goldenTime is a fixed instant with a fractional second, so the fixtures
// pin both the seconds and nanoseconds halves of the time layout.
var goldenTime = time.Date(2026, 1, 2, 3, 4, 5, 600700800, time.UTC)

func goldenID(t testing.TB) id.NapletID {
	t.Helper()
	parent := id.MustNew("czxu", "napserver-1.wayne.edu", goldenTime)
	clone, err := parent.Clone(2)
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

func goldenMessage(t testing.TB) Message {
	t.Helper()
	return Message{
		ID:      "sa/m-17",
		From:    id.MustNew("czxu", "sa1", goldenTime),
		To:      goldenID(t),
		Class:   UserMessage,
		Subject: "price-quote",
		Body:    []byte("widget=42"),
		SentAt:  goldenTime.Add(250 * time.Millisecond),
	}
}

func goldenRecord(t testing.TB) *Record {
	t.Helper()
	nid := goldenID(t)
	st := state.New()
	if err := st.SetPublic("best-price", 42); err != nil {
		t.Fatal(err)
	}
	if err := st.SetProtected("visited", "sa,sb", "sa", "sb"); err != nil {
		t.Fatal(err)
	}
	book := NewAddressBook()
	book.Add(id.MustNew("czxu", "sa1", goldenTime), "naplet://sa:1")
	book.Add(id.MustNew("amgr", "sb2", goldenTime.Add(time.Second)), "naplet://sb:2")
	log := NewNavigationLog()
	log.RecordArrival("sa:1", goldenTime)
	if err := log.RecordDeparture("sa:1", goldenTime.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	log.RecordArrival("sb:2", goldenTime.Add(2*time.Second))
	log.RecordReroute(Reroute{
		Visit:  "sc:3",
		Policy: "skip",
		Detail: "dial refused",
		At:     goldenTime.Add(3 * time.Second),
	})
	itin := &itinerary.Itinerary{
		Remaining: itinerary.Seq(
			itinerary.Singleton(itinerary.Visit{Server: "sc:3", Action: "collect"}),
			itinerary.Alt(
				itinerary.Singleton(itinerary.Visit{Server: "sd:4", Guard: "cheap", Action: "buy"}),
				itinerary.Singleton(itinerary.Visit{Server: "se:5", Action: "buy"}),
			),
		),
	}
	return &Record{
		ID: nid,
		Credential: cred.Credential{
			NapletID:  nid,
			Codebase:  "shopper",
			Roles:     []string{"guest", "buyer"},
			IssuedAt:  goldenTime,
			ExpiresAt: goldenTime.Add(time.Hour),
			Signature: []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},
		},
		Codebase: "shopper",
		Home:     "sa:1",
		State:    st,
		Itin:     itin,
		Book:     book,
		Log:      log,
		Pending:  itinerary.Visit{Server: "sc:3", Action: "collect"},
		PendingAlts: []*itinerary.Pattern{
			itinerary.Singleton(itinerary.Visit{Server: "se:5", Action: "buy"}),
			nil,
		},
		Failover: FailoverAlternates,
		CloneSeq: 3,
	}
}

// checkGolden compares got against the hex fixture, rewriting it under
// -update. Fixtures pin the wire layout: a mismatch means the codec layout
// drifted and needs a version bump plus regenerated fixtures, not a
// silent fixture refresh.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(got)+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run go test -update): %v", err)
	}
	want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
	if err != nil {
		t.Fatalf("corrupt fixture %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding drifted from the pinned layout.\n got %s\nwant %s\n"+
			"If the change is intentional, bump the codec version and regenerate with -update.",
			name, hex.EncodeToString(got), hex.EncodeToString(want))
	}
}

func TestRecordGoldenBytes(t *testing.T) {
	rec := goldenRecord(t)
	got := rec.AppendBinary(nil)
	if len(got) != rec.EncodedSize() {
		t.Fatalf("EncodedSize = %d, encoded %d bytes", rec.EncodedSize(), len(got))
	}
	checkGolden(t, "record_v1.hex", got)

	dec, err := DecodeRecordBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	re := dec.AppendBinary(nil)
	if !bytes.Equal(got, re) {
		t.Fatal("decode→encode of golden record is not byte-identical")
	}
}

func TestMessageGoldenBytes(t *testing.T) {
	msg := goldenMessage(t)
	got := msg.AppendBinary(nil)
	if len(got) != msg.EncodedSize() {
		t.Fatalf("EncodedSize = %d, encoded %d bytes", msg.EncodedSize(), len(got))
	}
	checkGolden(t, "mail_v1.hex", got)

	dec, rest, err := DecodeMessageBinary(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	re := dec.AppendBinary(nil)
	if !bytes.Equal(got, re) {
		t.Fatal("decode→encode of golden message is not byte-identical")
	}
}

// ---- Randomized encode→decode→encode property ----

func randString(r *rand.Rand, max int) string {
	n := r.Intn(max)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randTime(r *rand.Rand) time.Time {
	if r.Intn(8) == 0 {
		return time.Time{}
	}
	return time.Unix(r.Int63n(4e9)-2e9, r.Int63n(1e9)).UTC()
}

func randID(r *rand.Rand, t testing.TB) id.NapletID {
	nid := id.MustNew(randString(r, 8)+"o", randString(r, 12)+"h", randTime(r))
	for r.Intn(3) == 0 {
		var err error
		if nid, err = nid.Clone(1 + r.Intn(15)); err != nil {
			t.Fatal(err)
		}
	}
	return nid
}

func randPattern(r *rand.Rand, depth int) *itinerary.Pattern {
	if depth <= 0 || r.Intn(3) == 0 {
		return itinerary.Singleton(itinerary.Visit{
			Server: randString(r, 10),
			Guard:  randString(r, 6),
			Action: randString(r, 6),
		})
	}
	n := 1 + r.Intn(3)
	subs := make([]*itinerary.Pattern, n)
	for i := range subs {
		subs[i] = randPattern(r, depth-1)
	}
	switch r.Intn(3) {
	case 0:
		return itinerary.Seq(subs...)
	case 1:
		return itinerary.Alt(subs...)
	default:
		return itinerary.Par(subs...)
	}
}

func randRecord(r *rand.Rand, t testing.TB) *Record {
	rec := &Record{
		ID:       randID(r, t),
		Codebase: randString(r, 16),
		Home:     randString(r, 12),
		Pending: itinerary.Visit{
			Server: randString(r, 10),
			Action: randString(r, 6),
		},
		Failover: FailoverPolicy(randString(r, 5)),
		CloneSeq: r.Intn(100),
	}
	rec.Credential = cred.Credential{
		NapletID:  rec.ID,
		Codebase:  rec.Codebase,
		IssuedAt:  randTime(r),
		ExpiresAt: randTime(r),
	}
	for i := r.Intn(4); i > 0; i-- {
		rec.Credential.Roles = append(rec.Credential.Roles, randString(r, 8))
	}
	if r.Intn(2) == 0 {
		rec.Credential.Signature = []byte(randString(r, 32))
	}
	if r.Intn(4) != 0 {
		st := state.New()
		for i := r.Intn(5); i > 0; i-- {
			if err := st.SetPublic(randString(r, 8)+"k", randString(r, 20)); err != nil {
				t.Fatal(err)
			}
		}
		rec.State = st
	}
	if r.Intn(4) != 0 {
		rec.Itin = &itinerary.Itinerary{}
		if r.Intn(4) != 0 {
			rec.Itin.Remaining = randPattern(r, 3)
		}
	}
	if r.Intn(4) != 0 {
		book := NewAddressBook()
		for i := r.Intn(4); i > 0; i-- {
			book.Add(randID(r, t), "naplet://"+randString(r, 10))
		}
		rec.Book = book
	}
	if r.Intn(4) != 0 {
		log := NewNavigationLog()
		for i := r.Intn(4); i > 0; i-- {
			at := randTime(r)
			log.RecordArrival(randString(r, 8), at)
			if r.Intn(2) == 0 {
				log.RecordDeparture(randString(r, 8), at.Add(time.Second))
			}
		}
		rec.Log = log
	}
	for i := r.Intn(3); i > 0; i-- {
		if r.Intn(4) == 0 {
			rec.PendingAlts = append(rec.PendingAlts, nil)
		} else {
			rec.PendingAlts = append(rec.PendingAlts, randPattern(r, 2))
		}
	}
	return rec
}

func TestRecordEncodeDecodeEncodeIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		rec := randRecord(r, t)
		enc := rec.AppendBinary(nil)
		if len(enc) != rec.EncodedSize() {
			t.Fatalf("iter %d: EncodedSize %d, encoded %d", i, rec.EncodedSize(), len(enc))
		}
		dec, err := DecodeRecordBinary(enc)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		re := dec.AppendBinary(nil)
		if !bytes.Equal(enc, re) {
			t.Fatalf("iter %d: encode→decode→encode not byte-identical\n enc %x\n  re %x", i, enc, re)
		}
	}
}

func TestMessageEncodeDecodeEncodeIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		msg := Message{
			ID:      randString(r, 12),
			From:    randID(r, t),
			To:      randID(r, t),
			Class:   MessageClass(r.Intn(2)),
			Control: ControlVerb(randString(r, 6)),
			Subject: randString(r, 16),
			SentAt:  randTime(r),
		}
		if r.Intn(3) != 0 {
			msg.Body = []byte(randString(r, 40))
		}
		enc := msg.AppendBinary(nil)
		if len(enc) != msg.EncodedSize() {
			t.Fatalf("iter %d: EncodedSize %d, encoded %d", i, msg.EncodedSize(), len(enc))
		}
		dec, rest, err := DecodeMessageBinary(enc)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("iter %d: %d bytes left over", i, len(rest))
		}
		re := dec.AppendBinary(nil)
		if !bytes.Equal(enc, re) {
			t.Fatalf("iter %d: encode→decode→encode not byte-identical", i)
		}
	}
}

func TestDecodeRecordRejectsBadInput(t *testing.T) {
	rec := goldenRecord(t)
	enc := rec.AppendBinary(nil)

	if _, err := DecodeRecordBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := DecodeRecordBinary([]byte("XX")); err == nil {
		t.Error("bad magic accepted")
	}
	bumped := append([]byte(nil), enc...)
	bumped[2] = 99
	if _, err := DecodeRecordBinary(bumped); err == nil {
		t.Error("unknown version accepted")
	}
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeRecordBinary(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	trailing := append(append([]byte(nil), enc...), 0x00)
	if _, err := DecodeRecordBinary(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}
