package naplet

import (
	"bytes"
	"encoding/gob"
	"sort"
	"sync"

	"repro/internal/id"
)

// AddressEntry associates a naplet identifier with a known residing server.
// "The locations may not be current, but they provide a way of tracing and
// locating." (§2.1)
type AddressEntry struct {
	// NapletID identifies the peer naplet.
	NapletID id.NapletID
	// ServerURN is a server the peer was known to reside on; it is a
	// tracing starting point, not necessarily the current location.
	ServerURN string
}

// AddressBook holds the identifiers and initial locations of the naplets a
// naplet may communicate with (§2.1). Communication is restricted to
// naplets whose identifiers appear in the book. The book can be altered as
// the naplet grows and is inherited on clone. It is safe for concurrent use
// (the messenger reads it while the agent may be extending it).
type AddressBook struct {
	mu      sync.RWMutex
	entries map[string]AddressEntry // keyed by NapletID.Key()
}

// NewAddressBook returns an empty address book.
func NewAddressBook() *AddressBook {
	return &AddressBook{entries: make(map[string]AddressEntry)}
}

// Add records (or replaces) the entry for a peer naplet.
func (b *AddressBook) Add(nid id.NapletID, serverURN string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries[nid.Key()] = AddressEntry{NapletID: nid, ServerURN: serverURN}
}

// Remove deletes a peer's entry.
func (b *AddressBook) Remove(nid id.NapletID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.entries, nid.Key())
}

// Lookup returns the entry for a peer, if present.
func (b *AddressBook) Lookup(nid id.NapletID) (AddressEntry, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.entries[nid.Key()]
	return e, ok
}

// Knows reports whether the peer is in the book; the messenger refuses to
// post to unknown peers.
func (b *AddressBook) Knows(nid id.NapletID) bool {
	_, ok := b.Lookup(nid)
	return ok
}

// Update refreshes the known server of an existing entry; it is a no-op for
// absent peers (locator cache refreshes must not grow the book).
func (b *AddressBook) Update(nid id.NapletID, serverURN string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[nid.Key()]; ok {
		e.ServerURN = serverURN
		b.entries[nid.Key()] = e
	}
}

// Entries returns all entries sorted by identifier key, a stable order for
// collective-communication post-actions (cf. the paper's DataComm).
func (b *AddressBook) Entries() []AddressEntry {
	b.mu.RLock()
	defer b.mu.RUnlock()
	keys := make([]string, 0, len(b.entries))
	for k := range b.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]AddressEntry, len(keys))
	for i, k := range keys {
		out[i] = b.entries[k]
	}
	return out
}

// Len reports the number of entries.
func (b *AddressBook) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entries)
}

// Merge copies every entry of other into b, replacing duplicates.
func (b *AddressBook) Merge(other *AddressBook) {
	for _, e := range other.Entries() {
		b.Add(e.NapletID, e.ServerURN)
	}
}

// Clone deep-copies the book; clones inherit their parent's address book.
func (b *AddressBook) Clone() *AddressBook {
	c := NewAddressBook()
	c.Merge(b)
	return c
}

// bookSnapshot is the gob form of an address book.
type bookSnapshot struct {
	Entries []AddressEntry
}

// GobEncode implements gob.GobEncoder.
func (b *AddressBook) GobEncode() ([]byte, error) {
	snap := bookSnapshot{Entries: b.Entries()}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (b *AddressBook) GobDecode(data []byte) error {
	var snap bookSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = make(map[string]AddressEntry, len(snap.Entries))
	for _, e := range snap.Entries {
		b.entries[e.NapletID.Key()] = e
	}
	return nil
}
