package naplet

import (
	"fmt"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/state"
	"repro/internal/wire"
)

// Binary codecs for the migration payloads: messages, address books,
// navigation logs, and the full naplet record. These replace gob on the
// hot path (every hop serializes a record; every post serializes a
// message). Field layouts are pinned by golden-byte tests and documented
// in DESIGN.md §10; any layout change requires bumping RecordCodecVersion
// and regenerating the fixtures.

// RecordCodecVersion is the version byte carried after the record magic.
const RecordCodecVersion = 1

// recordMagic prefixes binary-encoded records. A gob stream can never
// begin with these bytes (gob's leading segment-length byte for any real
// record is far larger than the descriptor-free minimum), which is what
// lets DecodeRecord fall back to gob for records written before this
// codec existed — including those inside version-1 dock snapshots.
var recordMagic = [2]byte{'N', 'R'}

// ---- Message ----

// EncodedSize returns the exact binary-encoded size of the message.
func (m Message) EncodedSize() int {
	return wire.SizeString(m.ID) +
		m.From.EncodedSize() + m.To.EncodedSize() +
		wire.SizeUvarint(uint64(m.Class)) +
		wire.SizeString(string(m.Control)) +
		wire.SizeString(m.Subject) +
		wire.SizeBytes(m.Body) +
		wire.SizeTime(m.SentAt)
}

// AppendBinary appends the message's binary form to dst. Messages are
// embedded unversioned; the container (post body, dock snapshot) owns the
// version byte.
func (m Message) AppendBinary(dst []byte) []byte {
	dst = wire.AppendString(dst, m.ID)
	dst = m.From.AppendBinary(dst)
	dst = m.To.AppendBinary(dst)
	dst = wire.AppendUvarint(dst, uint64(m.Class))
	dst = wire.AppendString(dst, string(m.Control))
	dst = wire.AppendString(dst, m.Subject)
	dst = wire.AppendBytes(dst, m.Body)
	return wire.AppendTime(dst, m.SentAt)
}

// DecodeMessageBinary consumes one message from b and returns the rest.
// The body is copied, so the message does not alias b.
func DecodeMessageBinary(b []byte) (Message, []byte, error) {
	var m Message
	var err error
	if m.ID, b, err = wire.DecString(b); err != nil {
		return Message{}, nil, err
	}
	if m.From, b, err = id.DecodeBinary(b); err != nil {
		return Message{}, nil, err
	}
	if m.To, b, err = id.DecodeBinary(b); err != nil {
		return Message{}, nil, err
	}
	class, b, err := wire.DecUvarint(b)
	if err != nil {
		return Message{}, nil, err
	}
	m.Class = MessageClass(class)
	var control string
	if control, b, err = wire.DecString(b); err != nil {
		return Message{}, nil, err
	}
	m.Control = ControlVerb(control)
	if m.Subject, b, err = wire.DecString(b); err != nil {
		return Message{}, nil, err
	}
	body, b, err := wire.DecBytes(b)
	if err != nil {
		return Message{}, nil, err
	}
	if body != nil {
		m.Body = append([]byte(nil), body...)
	}
	if m.SentAt, b, err = wire.DecTime(b); err != nil {
		return Message{}, nil, err
	}
	return m, b, nil
}

// ---- AddressBook ----

// EncodedSize returns the exact binary-encoded size of the book.
func (b *AddressBook) EncodedSize() int {
	entries := b.Entries()
	sz := wire.SizeUvarint(uint64(len(entries)))
	for _, e := range entries {
		sz += e.NapletID.EncodedSize() + wire.SizeString(e.ServerURN)
	}
	return sz
}

// AppendBinary appends the book's binary form to dst, entries in sorted
// identifier order (deterministic for the golden-byte tests).
func (b *AddressBook) AppendBinary(dst []byte) []byte {
	entries := b.Entries()
	dst = wire.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = e.NapletID.AppendBinary(dst)
		dst = wire.AppendString(dst, e.ServerURN)
	}
	return dst
}

// DecodeBookBinary consumes one address book from b and returns the rest.
func DecodeBookBinary(b []byte) (*AddressBook, []byte, error) {
	cnt, b, err := wire.DecCount(b, 2)
	if err != nil {
		return nil, nil, err
	}
	book := NewAddressBook()
	for i := 0; i < cnt; i++ {
		nid, rest, err := id.DecodeBinary(b)
		if err != nil {
			return nil, nil, err
		}
		urn, rest, err := wire.DecString(rest)
		if err != nil {
			return nil, nil, err
		}
		book.entries[nid.Key()] = AddressEntry{NapletID: nid, ServerURN: urn}
		b = rest
	}
	return book, b, nil
}

// ---- NavigationLog ----

// EncodedSize returns the exact binary-encoded size of the log.
func (l *NavigationLog) EncodedSize() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	sz := wire.SizeUvarint(uint64(len(l.hops)))
	for _, h := range l.hops {
		sz += wire.SizeString(h.Server) + wire.SizeTime(h.Arrive) + wire.SizeTime(h.Depart)
	}
	sz += wire.SizeUvarint(uint64(len(l.reroutes)))
	for _, r := range l.reroutes {
		sz += wire.SizeString(r.Visit) + wire.SizeString(r.Policy) +
			wire.SizeString(r.Detail) + wire.SizeTime(r.At)
	}
	return sz
}

// AppendBinary appends the log's binary form to dst.
func (l *NavigationLog) AppendBinary(dst []byte) []byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	dst = wire.AppendUvarint(dst, uint64(len(l.hops)))
	for _, h := range l.hops {
		dst = wire.AppendString(dst, h.Server)
		dst = wire.AppendTime(dst, h.Arrive)
		dst = wire.AppendTime(dst, h.Depart)
	}
	dst = wire.AppendUvarint(dst, uint64(len(l.reroutes)))
	for _, r := range l.reroutes {
		dst = wire.AppendString(dst, r.Visit)
		dst = wire.AppendString(dst, r.Policy)
		dst = wire.AppendString(dst, r.Detail)
		dst = wire.AppendTime(dst, r.At)
	}
	return dst
}

// DecodeLogBinary consumes one navigation log from b and returns the rest.
func DecodeLogBinary(b []byte) (*NavigationLog, []byte, error) {
	hcnt, b, err := wire.DecCount(b, 3)
	if err != nil {
		return nil, nil, err
	}
	log := NewNavigationLog()
	if hcnt > 0 {
		log.hops = make([]Hop, hcnt)
		for i := range log.hops {
			h := &log.hops[i]
			if h.Server, b, err = wire.DecString(b); err != nil {
				return nil, nil, err
			}
			if h.Arrive, b, err = wire.DecTime(b); err != nil {
				return nil, nil, err
			}
			if h.Depart, b, err = wire.DecTime(b); err != nil {
				return nil, nil, err
			}
		}
	}
	rcnt, b, err := wire.DecCount(b, 4)
	if err != nil {
		return nil, nil, err
	}
	if rcnt > 0 {
		log.reroutes = make([]Reroute, rcnt)
		for i := range log.reroutes {
			r := &log.reroutes[i]
			if r.Visit, b, err = wire.DecString(b); err != nil {
				return nil, nil, err
			}
			if r.Policy, b, err = wire.DecString(b); err != nil {
				return nil, nil, err
			}
			if r.Detail, b, err = wire.DecString(b); err != nil {
				return nil, nil, err
			}
			if r.At, b, err = wire.DecTime(b); err != nil {
				return nil, nil, err
			}
		}
	}
	return log, b, nil
}

// ---- Record ----

// IsBinaryRecord reports whether data begins with the binary record magic,
// i.e. was produced by AppendBinary rather than the legacy gob encoder.
func IsBinaryRecord(data []byte) bool {
	return len(data) >= 3 && data[0] == recordMagic[0] && data[1] == recordMagic[1]
}

// EncodedSize returns the exact binary-encoded size of the record,
// including the magic and version prefix.
func (r *Record) EncodedSize() int {
	sz := len(recordMagic) + 1 + // magic + version byte
		r.ID.EncodedSize() +
		r.Credential.EncodedSize() +
		wire.SizeString(r.Codebase) +
		wire.SizeString(r.Home)
	sz += wire.SizeBool // state presence
	if r.State != nil {
		sz += r.State.EncodedSize()
	}
	sz += wire.SizeBool // itinerary presence
	if r.Itin != nil {
		sz += r.Itin.EncodedSize()
	}
	sz += wire.SizeBool // book presence
	if r.Book != nil {
		sz += r.Book.EncodedSize()
	}
	sz += wire.SizeBool // log presence
	if r.Log != nil {
		sz += r.Log.EncodedSize()
	}
	sz += r.Pending.EncodedSize()
	sz += wire.SizeUvarint(uint64(len(r.PendingAlts)))
	for _, p := range r.PendingAlts {
		sz += itinerary.SizeOptPattern(p)
	}
	return sz +
		wire.SizeString(string(r.Failover)) +
		wire.SizeUvarint(uint64(r.CloneSeq))
}

// AppendBinary appends the record's binary form to dst:
//
//	['N' 'R'] [version byte]
//	[NapletID] [Credential] [string codebase] [string home]
//	[opt State] [opt Itinerary] [opt AddressBook] [opt NavigationLog]
//	[Visit pending] [uvarint n] n×[opt Pattern alt]
//	[string failover] [uvarint cloneSeq]
func (r *Record) AppendBinary(dst []byte) []byte {
	dst = append(dst, recordMagic[0], recordMagic[1], RecordCodecVersion)
	dst = r.ID.AppendBinary(dst)
	dst = r.Credential.AppendBinary(dst)
	dst = wire.AppendString(dst, r.Codebase)
	dst = wire.AppendString(dst, r.Home)
	dst = wire.AppendBool(dst, r.State != nil)
	if r.State != nil {
		dst = r.State.AppendBinary(dst)
	}
	dst = wire.AppendBool(dst, r.Itin != nil)
	if r.Itin != nil {
		dst = r.Itin.AppendBinary(dst)
	}
	dst = wire.AppendBool(dst, r.Book != nil)
	if r.Book != nil {
		dst = r.Book.AppendBinary(dst)
	}
	dst = wire.AppendBool(dst, r.Log != nil)
	if r.Log != nil {
		dst = r.Log.AppendBinary(dst)
	}
	dst = r.Pending.AppendBinary(dst)
	dst = wire.AppendUvarint(dst, uint64(len(r.PendingAlts)))
	for _, p := range r.PendingAlts {
		dst = itinerary.AppendOptPattern(dst, p)
	}
	dst = wire.AppendString(dst, string(r.Failover))
	return wire.AppendUvarint(dst, uint64(r.CloneSeq))
}

// DecodeRecordBinary decodes a record produced by AppendBinary. It
// consumes all of data; trailing bytes are an error (records travel
// length-delimited inside transfer bodies and dock snapshots).
func DecodeRecordBinary(data []byte) (*Record, error) {
	if !IsBinaryRecord(data) {
		return nil, fmt.Errorf("%w: missing record magic", wire.ErrMalformed)
	}
	if data[2] != RecordCodecVersion {
		return nil, fmt.Errorf("naplet: unsupported record codec version %d", data[2])
	}
	b := data[3:]
	r := new(Record)
	var err error
	if r.ID, b, err = id.DecodeBinary(b); err != nil {
		return nil, err
	}
	if r.Credential, b, err = cred.DecodeBinary(b); err != nil {
		return nil, err
	}
	if r.Codebase, b, err = wire.DecString(b); err != nil {
		return nil, err
	}
	if r.Home, b, err = wire.DecString(b); err != nil {
		return nil, err
	}
	var present bool
	if present, b, err = wire.DecBool(b); err != nil {
		return nil, err
	}
	if present {
		if r.State, b, err = state.DecodeBinary(b); err != nil {
			return nil, err
		}
	}
	if present, b, err = wire.DecBool(b); err != nil {
		return nil, err
	}
	if present {
		if r.Itin, b, err = itinerary.DecodeBinary(b); err != nil {
			return nil, err
		}
	}
	if present, b, err = wire.DecBool(b); err != nil {
		return nil, err
	}
	if present {
		if r.Book, b, err = DecodeBookBinary(b); err != nil {
			return nil, err
		}
	}
	if present, b, err = wire.DecBool(b); err != nil {
		return nil, err
	}
	if present {
		if r.Log, b, err = DecodeLogBinary(b); err != nil {
			return nil, err
		}
	}
	if r.Pending, b, err = itinerary.DecodeVisit(b); err != nil {
		return nil, err
	}
	cnt, b, err := wire.DecCount(b, 1)
	if err != nil {
		return nil, err
	}
	if cnt > 0 {
		r.PendingAlts = make([]*itinerary.Pattern, cnt)
		for i := range r.PendingAlts {
			if r.PendingAlts[i], b, err = itinerary.DecodeOptPattern(b); err != nil {
				return nil, err
			}
		}
	}
	var failover string
	if failover, b, err = wire.DecString(b); err != nil {
		return nil, err
	}
	r.Failover = FailoverPolicy(failover)
	seq, b, err := wire.DecUvarint(b)
	if err != nil {
		return nil, err
	}
	r.CloneSeq = int(seq)
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after record", wire.ErrMalformed, len(b))
	}
	return r, nil
}
