package naplet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Hop is one server visit in the navigation log: arrival and departure
// times at a server (§2.1). A zero Depart means the naplet is still at (or
// ended its life at) the server.
type Hop struct {
	Server string
	Arrive time.Time
	Depart time.Time
}

// Dwell returns the time the naplet spent at the server, zero if it has
// not departed.
func (h Hop) Dwell() time.Duration {
	if h.Depart.IsZero() {
		return 0
	}
	return h.Depart.Sub(h.Arrive)
}

// Reroute records one failover decision: a planned visit that could not be
// reached (its destination presumed dead after the retry budget) and what
// the engine did instead. Reroutes are deliberately not hops — the naplet
// never arrived at Visit's server — but they keep the owner's
// post-analysis honest about the planned <C -> S; T> stops that were
// skipped, replaced, or abandoned.
type Reroute struct {
	// Visit is the unreachable visit in the paper's <C -> S; T> notation.
	Visit string
	// Policy is the failover policy applied ("skip", "alternate", "home").
	Policy string
	// Detail carries the dispatch error text.
	Detail string
	// At stamps the decision.
	At time.Time
}

// NavigationLog records the arrival and departure time information of the
// naplet at each server, providing the naplet owner with detailed travel
// information for post-analysis (§2.1). It is safe for concurrent use.
type NavigationLog struct {
	mu       sync.RWMutex
	hops     []Hop
	reroutes []Reroute
}

// NewNavigationLog returns an empty log.
func NewNavigationLog() *NavigationLog {
	return &NavigationLog{}
}

// RecordArrival appends a hop for the server with the given arrival time.
func (l *NavigationLog) RecordArrival(server string, at time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hops = append(l.hops, Hop{Server: server, Arrive: at})
}

// RecordDeparture sets the departure time of the latest hop. It is an error
// to record a departure with no open hop or for a different server.
func (l *NavigationLog) RecordDeparture(server string, at time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.hops) == 0 {
		return fmt.Errorf("naplet: departure from %q with empty log", server)
	}
	last := &l.hops[len(l.hops)-1]
	if last.Server != server {
		return fmt.Errorf("naplet: departure from %q but last arrival was %q", server, last.Server)
	}
	if !last.Depart.IsZero() {
		return fmt.Errorf("naplet: duplicate departure from %q", server)
	}
	last.Depart = at
	return nil
}

// RecordReroute appends a failover record for an unreachable visit.
func (l *NavigationLog) RecordReroute(r Reroute) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reroutes = append(l.reroutes, r)
}

// Reroutes returns a copy of the recorded failover decisions in order.
func (l *NavigationLog) Reroutes() []Reroute {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Reroute(nil), l.reroutes...)
}

// Hops returns a copy of the recorded hops in order.
func (l *NavigationLog) Hops() []Hop {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Hop(nil), l.hops...)
}

// Len reports the number of recorded hops.
func (l *NavigationLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.hops)
}

// Current returns the open hop (arrived, not yet departed), if any.
func (l *NavigationLog) Current() (Hop, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.hops) == 0 {
		return Hop{}, false
	}
	last := l.hops[len(l.hops)-1]
	if last.Depart.IsZero() {
		return last, true
	}
	return Hop{}, false
}

// TotalDwell sums the time spent at servers across all completed hops.
func (l *NavigationLog) TotalDwell() time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total time.Duration
	for _, h := range l.hops {
		total += h.Dwell()
	}
	return total
}

// TotalTransit sums the time between departures and next arrivals: the time
// the naplet spent in the network.
func (l *NavigationLog) TotalTransit() time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total time.Duration
	for i := 1; i < len(l.hops); i++ {
		prev, cur := l.hops[i-1], l.hops[i]
		if !prev.Depart.IsZero() {
			total += cur.Arrive.Sub(prev.Depart)
		}
	}
	return total
}

// Route returns the sequence of visited server names.
func (l *NavigationLog) Route() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.hops))
	for i, h := range l.hops {
		out[i] = h.Server
	}
	return out
}

// String renders the route compactly for logs: "a -> b -> c".
func (l *NavigationLog) String() string {
	return strings.Join(l.Route(), " -> ")
}

// Clone deep-copies the log; clones inherit the travel history that led to
// their creation.
func (l *NavigationLog) Clone() *NavigationLog {
	return &NavigationLog{hops: l.Hops(), reroutes: l.Reroutes()}
}

// logSnapshot is the gob form. Reroutes ride in a separate optional field,
// so logs written before failover existed still decode (gob skips absent
// fields).
type logSnapshot struct {
	Hops     []Hop
	Reroutes []Reroute
}

// GobEncode implements gob.GobEncoder.
func (l *NavigationLog) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(logSnapshot{Hops: l.Hops(), Reroutes: l.Reroutes()}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (l *NavigationLog) GobDecode(data []byte) error {
	var snap logSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hops = snap.Hops
	l.reroutes = snap.Reroutes
	return nil
}
