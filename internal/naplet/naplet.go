// Package naplet implements the Naplet class of §2.1 of the paper: the
// generic mobile agent abstraction that applications extend.
//
// A naplet's serializable closure is a Record: its immutable identity and
// credential, the codebase name of its behaviour, its protected state
// container, its itinerary, address book, and navigation log. Behaviour is
// code and cannot be serialized in Go, so it is referenced by codebase name
// and reconstructed from the codebase registry at each landing — the
// mechanical analogue of the paper's lazy class loading (§2.2 of DESIGN.md
// documents this substitution).
//
// Applications implement the Behavior interface (the paper's onStart hook)
// and optionally the Interruptible, Stoppable, and Destroyable hooks, and
// interact with the hosting server exclusively through the transient
// Context installed by the server's resource manager on arrival.
package naplet

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/state"
)

// Behavior is the application-specific agent logic: the paper's abstract
// onStart() method, "a single entry point when the naplet arrives at a
// host". OnStart runs once per server visit, inside the naplet's confined
// monitor group. Returning an error traps the naplet: execution stops and
// the error is reported to the home manager.
type Behavior interface {
	OnStart(ctx *Context) error
}

// Interruptible is implemented by behaviours that react to system messages:
// the paper's onInterrupt() hook, invoked by the Messenger when a control
// message (callback, terminate, suspend, resume) is cast onto the naplet.
// "How the control message should be reacted by the naplet is left
// unspecified. It is defined by the naplet creator."
type Interruptible interface {
	OnInterrupt(ctx *Context, msg Message) error
}

// Stoppable is implemented by behaviours that need the onStop() hook,
// invoked when the naplet departs a server after a completed visit.
type Stoppable interface {
	OnStop(ctx *Context)
}

// Destroyable is implemented by behaviours that need the onDestroy() hook,
// invoked once when the naplet's life cycle ends (itinerary complete or
// terminated).
type Destroyable interface {
	OnDestroy(ctx *Context)
}

// Record is the serializable closure of a naplet: everything that travels
// when the agent migrates. All fields are exported for encoding/gob; code
// outside the runtime should treat them as read-only and use the accessors
// on Context.
type Record struct {
	// ID is the system-wide unique immutable identifier (§2.1, Figure 1).
	ID id.NapletID
	// Credential certifies ID and Codebase with the creator's signature.
	Credential cred.Credential
	// Codebase names the behaviour in the codebase registry; the paper's
	// immutable codebase URL.
	Codebase string
	// Home is the server name of the naplet's home server, where its
	// manager and listener live.
	Home string
	// State is the protected serializable container of application state.
	State *state.State
	// Itin is the remaining travel plan.
	Itin *itinerary.Itinerary
	// Book is the address book for inter-naplet communication.
	Book *AddressBook
	// Log is the navigation log of arrivals and departures.
	Log *NavigationLog
	// Pending is the visit the naplet is travelling to execute: set by the
	// origin server when dispatching, consumed by the destination's visit
	// engine (its Action runs after OnStart there).
	Pending itinerary.Visit
	// PendingAlts are the Alt-node alternatives to the Pending visit,
	// captured at decision time: complete replacement itineraries the
	// origin falls back to when dispatch exhausts against a dead
	// destination (FailoverAlternates). Cleared on landing.
	PendingAlts []*itinerary.Pattern
	// Failover selects how the visit engine reacts when dispatch to the
	// next server exhausts its retry budget against a dead peer.
	Failover FailoverPolicy
	// CloneSeq numbers the clones this naplet has spawned, so Par forks
	// allocate unique heritage indices across the whole life cycle.
	CloneSeq int
}

// FailoverPolicy names the visit engine's reaction to a dead destination.
type FailoverPolicy string

// Failover policies.
const (
	// FailoverNone traps the naplet (the pre-failover behaviour).
	FailoverNone FailoverPolicy = ""
	// FailoverSkip records the unreachable visit in the navigation log
	// and continues with the rest of the itinerary.
	FailoverSkip FailoverPolicy = "skip"
	// FailoverAlternates re-routes through the unchosen branches of the
	// visit's Alt node (falling back to skip when there are none).
	FailoverAlternates FailoverPolicy = "alternates"
	// FailoverHome abandons the remaining itinerary and returns the
	// naplet to its home server.
	FailoverHome FailoverPolicy = "home"
)

// ParseFailoverPolicy validates a policy name ("", "skip", "alternates",
// "home", with "none" accepted as an alias for "").
func ParseFailoverPolicy(s string) (FailoverPolicy, error) {
	switch FailoverPolicy(s) {
	case FailoverNone, FailoverSkip, FailoverAlternates, FailoverHome:
		return FailoverPolicy(s), nil
	case "none":
		return FailoverNone, nil
	default:
		return FailoverNone, fmt.Errorf("naplet: unknown failover policy %q", s)
	}
}

// NextCloneIndex allocates the next clone heritage index (1-based). The
// record is owned by a single visit engine at a time, so no locking is
// needed.
func (r *Record) NextCloneIndex() int {
	r.CloneSeq++
	return r.CloneSeq
}

// NewRecord assembles a fresh naplet record. State, book and log are
// created empty if nil.
func NewRecord(nid id.NapletID, credential cred.Credential, codebase, home string, itin *itinerary.Itinerary) *Record {
	return &Record{
		ID:         nid,
		Credential: credential,
		Codebase:   codebase,
		Home:       home,
		State:      state.New(),
		Itin:       itin,
		Book:       NewAddressBook(),
		Log:        NewNavigationLog(),
	}
}

// CloneFor derives the record of the k-th clone for a Par itinerary branch.
// The clone gets a heritage-extended ID, a deep copy of the state, an
// inherited address book (§2.1: "It can also be inherited in naplet
// clone"), the branch as its itinerary, and a navigation log inheriting the
// parent's history (so the owner's post-analysis sees the full path that
// led to the clone).
func (r *Record) CloneFor(k int, branch *itinerary.Itinerary, credential cred.Credential) (*Record, error) {
	cid, err := r.ID.Clone(k)
	if err != nil {
		return nil, err
	}
	return &Record{
		ID:         cid,
		Credential: credential,
		Codebase:   r.Codebase,
		Home:       r.Home,
		State:      r.State.Clone(),
		Itin:       branch,
		Book:       r.Book.Clone(),
		Log:        r.Log.Clone(),
		Failover:   r.Failover,
		// Pending and CloneSeq start fresh: the clone has its own travel
		// plan and its own clone generation.
	}, nil
}

// MessengerAPI is the messaging surface a hosting server exposes to the
// naplet through its context: the paper's reliable, location-independent
// post-office service (§4.2). Implemented by internal/messenger.
type MessengerAPI interface {
	// Post sends a user message to the named naplet, located through the
	// system's locator. It returns once the server's messenger accepts the
	// message for reliable delivery.
	Post(ctx context.Context, to id.NapletID, subject string, body []byte) error
	// Receive blocks until a message arrives in the naplet's mailbox or
	// ctx is done. "It is the naplet that decides when to check its
	// mailbox."
	Receive(ctx context.Context) (Message, error)
	// TryReceive returns the next mailbox message without blocking.
	TryReceive() (Message, bool)
}

// ServicesAPI is the resource-access surface: open services callable by
// handler and privileged services reachable only through service channels
// (§2.2, §5.3). Implemented by internal/resource.
type ServicesAPI interface {
	// CallOpen invokes a registered non-privileged (open) service by name.
	CallOpen(name string, args []string) (string, error)
	// OpenChannel requests a service channel to a privileged service. The
	// resource manager applies naplet-specific access control based on the
	// naplet's credential before granting the channel.
	OpenChannel(name string) (ServiceChannel, error)
	// Channels lists the privileged service names available on the server.
	Channels() []string
}

// ServiceChannel is the naplet-side endpoint pair of a service channel: a
// synchronous pipe to a privileged service (§5.3). WriteLine corresponds to
// the paper's NapletWriter, ReadLine to NapletReader.
type ServiceChannel interface {
	// WriteLine sends one request line to the service.
	WriteLine(line string) error
	// ReadLine receives one reply line from the service.
	ReadLine() (string, error)
	// Close releases the channel and its service-side resources.
	Close() error
}

// ListenerAPI lets a travelling naplet report back to its owner: the
// paper's NapletListener with its report() callback, reached through the
// naplet's home manager.
type ListenerAPI interface {
	Report(ctx context.Context, body []byte) error
}

// TravelAPI is the dispatch proxy through which a naplet (or the visit
// engine on its behalf) requests migration.
type TravelAPI interface {
	// Depart asks the hosting server's navigator to dispatch the naplet to
	// the destination server once the current visit completes.
	Depart(ctx context.Context, dest string) error
}

// Clock abstracts time for the runtime so experiments can warp it.
type Clock interface {
	Now() time.Time
}

// ClockFunc adapts a function to Clock.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// Context is the confined execution environment of a naplet on one server
// (§2.1): "The context object provides references to dispatch proxy,
// message, and stationary application services on the server. The context
// object is a transient attribute and is to be set by a resource manager on
// the arrival of the naplet." It never serializes; a fresh context is
// installed at every landing.
type Context struct {
	// Server is the name of the hosting naplet server.
	Server string
	// Record is the naplet's serializable closure.
	Record *Record
	// Messenger is the post-office service of the hosting server.
	Messenger MessengerAPI
	// Services is the resource manager's service surface.
	Services ServicesAPI
	// Listener reports results to the naplet's owner at its home server.
	Listener ListenerAPI
	// Clock is the server's time source.
	Clock Clock

	// Cancel is the Go context bounding this visit's execution; the
	// monitor cancels it on terminate/suspend and on resource-policy kills.
	Cancel context.Context
}

// NapletID returns the executing naplet's identifier.
func (c *Context) NapletID() id.NapletID { return c.Record.ID }

// State returns the naplet's state container.
func (c *Context) State() *state.State { return c.Record.State }

// AddressBook returns the naplet's address book.
func (c *Context) AddressBook() *AddressBook { return c.Record.Book }

// Itinerary returns the naplet's remaining itinerary.
func (c *Context) Itinerary() *itinerary.Itinerary { return c.Record.Itin }

// Log returns the naplet's navigation log.
func (c *Context) Log() *NavigationLog { return c.Record.Log }

// Now returns the server's current time, falling back to the wall clock
// when no clock was installed.
func (c *Context) Now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return time.Now()
}
