// Package fault is a deterministic, seed-driven fault injector for the
// naplet transport layer.
//
// The paper's reliability story (§4: the Messenger's forwarding chase and
// held mail, the Navigator's LAUNCH/LANDING negotiation with delivery
// acknowledgements) is only credible if it survives servers that crash
// mid-transfer, links that flap, and replies that never arrive. netsim
// models static loss and partitions; this package injects the dynamic
// failure modes on top of any transport.Node or transport.Fabric:
//
//   - crash/restart: a named node becomes unreachable (calls from and to
//     it fail) until restarted;
//   - transient partition: a host pair becomes mutually unreachable until
//     healed;
//   - latency spike: a call is delayed by a configured spike;
//   - frame drop: the request is lost before the handler runs;
//   - reply drop (delayed reply): the handler runs to completion but the
//     caller never sees the reply — the fault that forces idempotent
//     retry handling, because the side effect happened;
//   - duplication: the frame is delivered twice, back to back.
//
// Every probabilistic decision is a pure function of (seed, from, to,
// frame kind, per-flow sequence number), so a schedule replays exactly
// from a single int64 seed regardless of goroutine interleaving across
// flows. Scripted faults (crash windows, partitions) trigger on the
// injector's global intercepted-call count. Every injected fault is
// appended to a bounded event trail, so a chaos-test failure can be
// replayed and diffed fault by fault.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Fault kinds as they appear in the event trail and telemetry labels.
const (
	FaultDropRequest = "drop-request"
	FaultDropReply   = "drop-reply"
	FaultDuplicate   = "duplicate"
	FaultDelay       = "delay"
	FaultCrash       = "crash"
	FaultPartition   = "partition"
	FaultOverload    = "overload"
)

// faultKinds enumerates every trail/telemetry label, for registration.
var faultKinds = []string{
	FaultDropRequest, FaultDropReply, FaultDuplicate,
	FaultDelay, FaultCrash, FaultPartition, FaultOverload,
}

// Errors surfaced to callers for injected faults. All are transient from
// the protocol's point of view: retry policies treat them like network
// loss, never like a policy refusal. Crash and partition refuse the call
// before delivery, so they carry transport.ErrRefused; the drops model
// frames lost in flight — a real caller cannot tell a lost request from
// a lost reply, so both stay ambiguous.
var (
	ErrInjectedDrop      = errors.New("fault: injected frame drop")
	ErrInjectedReplyDrop = errors.New("fault: injected reply drop (frame was delivered)")
	ErrCrashed           = fmt.Errorf("fault: node crashed (%w)", transport.ErrRefused)
	ErrInjectedPartition = fmt.Errorf("fault: injected partition (%w)", transport.ErrRefused)
	// ErrInjectedOverload synthesizes an admission-gate shed: it wraps
	// overload.ErrOverloaded so clients exercise exactly the retry,
	// breaker and budget paths a real overloaded dock would trigger
	// (and transport.Refused treats it as provably undelivered).
	ErrInjectedOverload = fmt.Errorf("fault: injected overload shed (%w)", overload.ErrOverloaded)
)

// Probabilities configures the per-call fault rates. The draws are
// mutually exclusive: one uniform sample per call is partitioned into
// [drop-request | drop-reply | duplicate | delay | none], so the rates
// must sum to at most 1.
type Probabilities struct {
	// DropRequest loses the frame before the handler runs.
	DropRequest float64
	// DropReply runs the handler but loses the reply: the caller sees a
	// timeout-like error after the side effect happened.
	DropReply float64
	// Duplicate delivers the frame twice, back to back.
	Duplicate float64
	// Delay injects a latency spike of Config.DelaySpike before delivery.
	Delay float64
	// Overload refuses the call with a synthesized ErrOverloaded before
	// delivery, as an admission gate under pressure would.
	Overload float64
}

// Op is a scripted schedule operation.
type Op int

// Schedule operations.
const (
	// OpCrash makes node A unreachable.
	OpCrash Op = iota
	// OpRestart brings node A back.
	OpRestart
	// OpPartition cuts the pair A,B in both directions.
	OpPartition
	// OpHeal heals the pair A,B.
	OpHeal
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpPartition:
		return "partition"
	case OpHeal:
		return "heal"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Step is one scripted schedule entry: after the injector has intercepted
// AfterCalls calls in total, the operation fires.
type Step struct {
	AfterCalls int64
	Op         Op
	// A names the crashed/restarted node, or one end of the pair.
	A string
	// B names the other end of a partition/heal pair.
	B string
}

// Config parameterizes an injector.
type Config struct {
	// Seed drives every probabilistic decision. The same seed over the
	// same traffic pattern injects the same faults.
	Seed int64
	// P sets the per-call fault probabilities.
	P Probabilities
	// DelaySpike is the injected latency spike magnitude (default 2ms).
	DelaySpike time.Duration
	// Schedule lists scripted faults, triggered by global call count.
	Schedule []Step
	// Kinds filters which frame kinds are eligible for probabilistic
	// faults; nil means all. Scripted crash/partition checks apply to
	// every call regardless.
	Kinds func(k wire.Kind) bool
	// Telemetry, when non-nil, receives naplet_fault_injected_total
	// counters labelled by fault kind.
	Telemetry *telemetry.Registry
	// MaxTrail bounds the retained event trail (default 8192 events).
	MaxTrail int
}

// Event is one injected fault in the trail.
type Event struct {
	// Seq is the injector's global call number at injection time.
	Seq int64
	// At is the wall-clock injection time.
	At time.Time
	// From and To address the intercepted call.
	From, To string
	// Frame is the intercepted frame kind ("" for scripted ops).
	Frame wire.Kind
	// Fault is one of the Fault* label constants.
	Fault string
	// Detail carries operation-specific context (e.g. the schedule op).
	Detail string
}

// Injector intercepts transport calls and injects faults. One injector
// serves a whole simulated space: wrap the shared fabric with Fabric, or
// individual nodes with WrapNode.
type Injector struct {
	cfg   Config
	calls atomic.Int64

	mu          sync.Mutex
	crashed     map[string]bool
	partitioned map[[2]string]bool
	steps       []Step // pending, sorted by AfterCalls
	trail       []Event
	dropped     int64 // trail events discarded beyond MaxTrail
	counts      map[string]*atomic.Int64

	flows sync.Map // "from|to|kind" -> *atomic.Uint64

	met map[string]*telemetry.Counter
}

// New builds an injector from cfg.
func New(cfg Config) *Injector {
	if cfg.DelaySpike <= 0 {
		cfg.DelaySpike = 2 * time.Millisecond
	}
	if cfg.MaxTrail <= 0 {
		cfg.MaxTrail = 8192
	}
	steps := append([]Step(nil), cfg.Schedule...)
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && steps[j].AfterCalls < steps[j-1].AfterCalls; j-- {
			steps[j], steps[j-1] = steps[j-1], steps[j]
		}
	}
	inj := &Injector{
		cfg:         cfg,
		crashed:     make(map[string]bool),
		partitioned: make(map[[2]string]bool),
		steps:       steps,
		counts:      make(map[string]*atomic.Int64),
	}
	for _, k := range faultKinds {
		inj.counts[k] = new(atomic.Int64)
	}
	if cfg.Telemetry != nil {
		inj.met = make(map[string]*telemetry.Counter, len(faultKinds))
		for _, k := range faultKinds {
			inj.met[k] = cfg.Telemetry.Counter("naplet_fault_injected_total",
				"faults injected by the chaos harness", "fault", k)
		}
	}
	return inj
}

// ---- manual fault control (also reachable via the schedule) ----

// Crash makes addr unreachable: every intercepted call from or to it
// fails with ErrCrashed until Restart.
func (i *Injector) Crash(addr string) {
	i.mu.Lock()
	i.crashed[addr] = true
	i.mu.Unlock()
	i.record(Event{From: addr, Fault: FaultCrash, Detail: "crash"})
}

// Restart brings a crashed addr back.
func (i *Injector) Restart(addr string) {
	i.mu.Lock()
	delete(i.crashed, addr)
	i.mu.Unlock()
	i.record(Event{From: addr, Fault: FaultCrash, Detail: "restart"})
}

// Partition cuts both directions between a and b until Heal.
func (i *Injector) Partition(a, b string) {
	i.mu.Lock()
	i.partitioned[[2]string{a, b}] = true
	i.partitioned[[2]string{b, a}] = true
	i.mu.Unlock()
	i.record(Event{From: a, To: b, Fault: FaultPartition, Detail: "cut"})
}

// Heal restores the pair a,b.
func (i *Injector) Heal(a, b string) {
	i.mu.Lock()
	delete(i.partitioned, [2]string{a, b})
	delete(i.partitioned, [2]string{b, a})
	i.mu.Unlock()
	i.record(Event{From: a, To: b, Fault: FaultPartition, Detail: "heal"})
}

// ---- observability ----

// Trail returns a copy of the retained event trail.
func (i *Injector) Trail() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.trail...)
}

// TrailDropped reports how many events were discarded beyond MaxTrail.
func (i *Injector) TrailDropped() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.dropped
}

// Counts returns the per-fault-kind injection totals. Every trail event
// is counted (crash/partition state changes and per-call rejections
// included), so while the trail has not overflowed MaxTrail the totals
// reconcile exactly with a tally of Trail().
func (i *Injector) Counts() map[string]int64 {
	out := make(map[string]int64, len(i.counts))
	for k, c := range i.counts {
		out[k] = c.Load()
	}
	return out
}

// Calls reports the number of intercepted calls so far.
func (i *Injector) Calls() int64 { return i.calls.Load() }

// record appends a trail event, stamps counters and telemetry.
func (i *Injector) record(ev Event) {
	ev.At = time.Now()
	if ev.Seq == 0 {
		ev.Seq = i.calls.Load()
	}
	if c := i.counts[ev.Fault]; c != nil {
		c.Add(1)
	}
	if i.met != nil {
		if c := i.met[ev.Fault]; c != nil {
			c.Inc()
		}
	}
	i.mu.Lock()
	if len(i.trail) < i.cfg.MaxTrail {
		i.trail = append(i.trail, ev)
	} else {
		i.dropped++
	}
	i.mu.Unlock()
}

// ---- deterministic decision function ----

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix, the standard way to turn a structured key into uniform
// bits without a shared generator (which would make decisions depend on
// goroutine interleaving).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a flow identity.
func fnv64(parts ...string) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for j := 0; j < len(p); j++ {
			h ^= uint64(p[j])
			h *= 1099511628211
		}
		h ^= '|'
		h *= 1099511628211
	}
	return h
}

// draw returns a uniform float in [0,1) for the n-th call of a flow.
func (i *Injector) draw(from, to string, kind wire.Kind, n uint64) float64 {
	x := splitmix64(uint64(i.cfg.Seed) ^ splitmix64(fnv64(from, to, string(kind))+n))
	return float64(x>>11) / float64(1<<53)
}

// flowSeq returns the per-(from,to,kind) call counter.
func (i *Injector) flowSeq(from, to string, kind wire.Kind) uint64 {
	key := from + "|" + to + "|" + string(kind)
	c, ok := i.flows.Load(key)
	if !ok {
		c, _ = i.flows.LoadOrStore(key, new(atomic.Uint64))
	}
	return c.(*atomic.Uint64).Add(1)
}

// decide maps one uniform draw onto the mutually exclusive fault kinds.
func (p Probabilities) decide(x float64) string {
	cut := p.DropRequest
	if x < cut {
		return FaultDropRequest
	}
	cut += p.DropReply
	if x < cut {
		return FaultDropReply
	}
	cut += p.Duplicate
	if x < cut {
		return FaultDuplicate
	}
	cut += p.Delay
	if x < cut {
		return FaultDelay
	}
	cut += p.Overload
	if x < cut {
		return FaultOverload
	}
	return ""
}

// ---- scripted schedule ----

// applySchedule fires every pending step whose threshold the global call
// counter has passed.
func (i *Injector) applySchedule(calls int64) {
	i.mu.Lock()
	var due []Step
	for len(i.steps) > 0 && i.steps[0].AfterCalls <= calls {
		due = append(due, i.steps[0])
		i.steps = i.steps[1:]
	}
	i.mu.Unlock()
	for _, st := range due {
		switch st.Op {
		case OpCrash:
			i.Crash(st.A)
		case OpRestart:
			i.Restart(st.A)
		case OpPartition:
			i.Partition(st.A, st.B)
		case OpHeal:
			i.Heal(st.A, st.B)
		}
	}
}

// ---- wrapping ----

// Fabric wraps a transport fabric: every node attached through the
// returned fabric has its outbound calls intercepted by the injector.
func (i *Injector) Fabric(inner transport.Fabric) transport.Fabric {
	return &faultFabric{inj: i, inner: inner}
}

type faultFabric struct {
	inj   *Injector
	inner transport.Fabric
}

// Attach implements transport.Fabric.
func (f *faultFabric) Attach(addr string, h transport.Handler) (transport.Node, error) {
	n, err := f.inner.Attach(addr, h)
	if err != nil {
		return nil, err
	}
	return f.inj.WrapNode(n), nil
}

// WrapNode wraps a single node so its outbound calls pass through the
// injector. Inbound faults are modelled on the sender's side, so wrapping
// every caller covers the space.
func (i *Injector) WrapNode(n transport.Node) transport.Node {
	return &faultNode{inj: i, inner: n}
}

type faultNode struct {
	inj   *Injector
	inner transport.Node
}

func (n *faultNode) Addr() string { return n.inner.Addr() }
func (n *faultNode) Close() error { return n.inner.Close() }

// Call implements transport.Node, injecting faults around the inner call.
func (n *faultNode) Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error) {
	i := n.inj
	calls := i.calls.Add(1)
	i.applySchedule(calls)
	from := n.inner.Addr()

	i.mu.Lock()
	crashed := i.crashed[from] || i.crashed[to]
	cut := i.partitioned[[2]string{from, to}]
	i.mu.Unlock()
	if crashed {
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultCrash, Detail: "rejected"})
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s", ErrCrashed, from, to)
	}
	if cut {
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultPartition, Detail: "rejected"})
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s", ErrInjectedPartition, from, to)
	}

	if i.cfg.Kinds != nil && !i.cfg.Kinds(f.Kind) {
		return n.inner.Call(ctx, to, f)
	}
	switch i.cfg.P.decide(i.draw(from, to, f.Kind, i.flowSeq(from, to, f.Kind))) {
	case FaultDropRequest:
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultDropRequest})
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s (%s)", ErrInjectedDrop, from, to, f.Kind)
	case FaultDropReply:
		// The handler must run even if the caller gives up waiting: this
		// is the delayed/lost-reply fault, where the side effect happens
		// but the acknowledgement never arrives.
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultDropReply})
		dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
		defer cancel()
		_, _ = n.inner.Call(dctx, to, f)
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s (%s)", ErrInjectedReplyDrop, from, to, f.Kind)
	case FaultDuplicate:
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultDuplicate})
		first, ferr := n.inner.Call(ctx, to, f)
		second, serr := n.inner.Call(ctx, to, f)
		// The caller sees the second delivery's outcome; if only the
		// first leg survived, fall back to it so a duplicate alone never
		// manufactures a loss.
		if serr != nil && ferr == nil {
			return first, nil
		}
		return second, serr
	case FaultOverload:
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultOverload})
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s (%s)", ErrInjectedOverload, from, to, f.Kind)
	case FaultDelay:
		i.record(Event{Seq: calls, From: from, To: to, Frame: f.Kind, Fault: FaultDelay})
		t := time.NewTimer(i.cfg.DelaySpike)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return wire.Frame{}, ctx.Err()
		}
	}
	return n.inner.Call(ctx, to, f)
}
