package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// kindPing is the frame kind used by injector tests.
const kindPing = wire.Kind("fault.test-ping")

// pingBody is a trivial frame payload (frames cannot carry a nil body).
type pingBody struct{ N int }

// rig attaches an echoing peer and a caller through the injector's fabric.
type rig struct {
	inj    *Injector
	caller transport.Node
	served atomic.Int64 // handler invocations at the peer
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{inj: New(cfg)}
	fab := r.inj.Fabric(netsim.New(netsim.Config{}))
	echo := func(from string, f wire.Frame) (wire.Frame, error) {
		r.served.Add(1)
		return wire.NewFrame(kindPing, f.To, f.From, &pingBody{})
	}
	if _, err := fab.Attach("peer", echo); err != nil {
		t.Fatal(err)
	}
	caller, err := fab.Attach("caller", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, errors.New("caller serves nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	r.caller = caller
	return r
}

func (r *rig) ping(t *testing.T) error {
	t.Helper()
	f, err := wire.NewFrame(kindPing, "", "", &pingBody{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = r.caller.Call(ctx, "peer", f)
	return err
}

// faults projects a trail onto its (call number, fault kind) sequence.
func faults(trail []Event) []string {
	out := make([]string, len(trail))
	for i, ev := range trail {
		out[i] = fmt.Sprintf("%d:%s/%s", ev.Seq, ev.Fault, ev.Detail)
	}
	return out
}

func TestSameSeedSameFaults(t *testing.T) {
	// The injector's whole point: one int64 reproduces the fault pattern.
	cfg := Config{Seed: 42, P: Probabilities{DropRequest: 0.2, DropReply: 0.1, Duplicate: 0.1, Delay: 0.1}}
	run := func() []string {
		r := newRig(t, cfg)
		for i := 0; i < 200; i++ {
			_ = r.ping(t)
		}
		return faults(r.inj.Trail())
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("expected some injected faults at these rates")
	}
	if len(first) != len(second) {
		t.Fatalf("trail lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("trail diverges at %d: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestDifferentSeedDifferentFaults(t *testing.T) {
	run := func(seed int64) []int64 {
		r := newRig(t, Config{Seed: seed, P: Probabilities{DropRequest: 0.3}})
		for i := 0; i < 100; i++ {
			_ = r.ping(t)
		}
		var seqs []int64
		for _, ev := range r.inj.Trail() {
			seqs = append(seqs, ev.Seq)
		}
		return seqs
	}
	a, b := run(1), run(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds dropped exactly the same calls")
		}
	}
}

func TestCrashAndRestart(t *testing.T) {
	r := newRig(t, Config{})
	r.inj.Crash("peer")
	if err := r.ping(t); !errors.Is(err, ErrCrashed) {
		t.Fatalf("call to crashed node: %v", err)
	}
	if r.served.Load() != 0 {
		t.Fatal("crashed node must not serve")
	}
	r.inj.Restart("peer")
	if err := r.ping(t); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	// Calls *from* a crashed node fail too.
	r.inj.Crash("caller")
	if err := r.ping(t); !errors.Is(err, ErrCrashed) {
		t.Fatalf("call from crashed node: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	r := newRig(t, Config{})
	r.inj.Partition("caller", "peer")
	if err := r.ping(t); !errors.Is(err, ErrInjectedPartition) {
		t.Fatalf("call across partition: %v", err)
	}
	r.inj.Heal("caller", "peer")
	if err := r.ping(t); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestDropRequestSkipsHandler(t *testing.T) {
	r := newRig(t, Config{P: Probabilities{DropRequest: 1}})
	if err := r.ping(t); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("want injected drop, got %v", err)
	}
	if r.served.Load() != 0 {
		t.Fatal("dropped request must not reach the handler")
	}
}

func TestDropReplyRunsHandler(t *testing.T) {
	// The defining property of the delayed-reply fault: the caller sees an
	// error but the side effect happened.
	r := newRig(t, Config{P: Probabilities{DropReply: 1}})
	if err := r.ping(t); !errors.Is(err, ErrInjectedReplyDrop) {
		t.Fatalf("want injected reply drop, got %v", err)
	}
	if got := r.served.Load(); got != 1 {
		t.Fatalf("handler ran %d times, want 1", got)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	r := newRig(t, Config{P: Probabilities{Duplicate: 1}})
	if err := r.ping(t); err != nil {
		t.Fatalf("duplicated call must still succeed: %v", err)
	}
	if got := r.served.Load(); got != 2 {
		t.Fatalf("handler ran %d times, want 2", got)
	}
}

func TestDelayStillDelivers(t *testing.T) {
	r := newRig(t, Config{P: Probabilities{Delay: 1}, DelaySpike: time.Millisecond})
	start := time.Now()
	if err := r.ping(t); err != nil {
		t.Fatalf("delayed call must succeed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Fatalf("delay spike not applied: %v", elapsed)
	}
	if r.served.Load() != 1 {
		t.Fatal("delayed frame must be delivered once")
	}
}

func TestKindsFilterLimitsFaults(t *testing.T) {
	r := newRig(t, Config{
		P:     Probabilities{DropRequest: 1},
		Kinds: func(k wire.Kind) bool { return k != kindPing },
	})
	if err := r.ping(t); err != nil {
		t.Fatalf("filtered kind must pass untouched: %v", err)
	}
}

func TestScheduleFiresOnCallCount(t *testing.T) {
	r := newRig(t, Config{Schedule: []Step{
		{AfterCalls: 2, Op: OpCrash, A: "peer"},
		{AfterCalls: 4, Op: OpRestart, A: "peer"},
	}})
	if err := r.ping(t); err != nil { // call 1: before the crash window
		t.Fatalf("call 1: %v", err)
	}
	if err := r.ping(t); !errors.Is(err, ErrCrashed) { // call 2: crash fires
		t.Fatalf("call 2 should hit the crash: %v", err)
	}
	if err := r.ping(t); !errors.Is(err, ErrCrashed) { // call 3: still down
		t.Fatalf("call 3 should hit the crash: %v", err)
	}
	if err := r.ping(t); err != nil { // call 4: restart fires first
		t.Fatalf("call 4 should succeed after restart: %v", err)
	}
}

func TestCountsReconcileWithTrail(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := newRig(t, Config{
		Seed:      7,
		P:         Probabilities{DropRequest: 0.3, Duplicate: 0.2},
		Telemetry: reg,
	})
	r.inj.Crash("nobody")
	r.inj.Restart("nobody")
	for i := 0; i < 150; i++ {
		_ = r.ping(t)
	}
	tally := make(map[string]int64)
	for _, ev := range r.inj.Trail() {
		tally[ev.Fault]++
	}
	counts := r.inj.Counts()
	for _, k := range faultKinds {
		if counts[k] != tally[k] {
			t.Fatalf("%s: counts=%d trail=%d", k, counts[k], tally[k])
		}
		met := reg.Counter("naplet_fault_injected_total",
			"faults injected by the chaos harness", "fault", k)
		if met.Value() != counts[k] {
			t.Fatalf("%s: telemetry=%d counts=%d", k, met.Value(), counts[k])
		}
	}
}

func TestTrailBounded(t *testing.T) {
	r := newRig(t, Config{P: Probabilities{DropRequest: 1}, MaxTrail: 4})
	for i := 0; i < 10; i++ {
		_ = r.ping(t)
	}
	if got := len(r.inj.Trail()); got != 4 {
		t.Fatalf("trail length = %d, want 4", got)
	}
	if got := r.inj.TrailDropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	// Counters keep exact totals even after the trail overflows.
	if got := r.inj.Counts()[FaultDropRequest]; got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
}

func TestOverloadFaultSynthesis(t *testing.T) {
	// An injected overload shed carries the real overload sentinel, so
	// every client-side defense (retry-with-backoff, liveness verdicts,
	// Refused) treats it exactly like a genuine admission-gate shed.
	r := newRig(t, Config{Seed: 7, P: Probabilities{Overload: 1}})
	err := r.ping(t)
	if !errors.Is(err, ErrInjectedOverload) {
		t.Fatalf("err = %v, want ErrInjectedOverload", err)
	}
	if !errors.Is(err, overload.ErrOverloaded) {
		t.Fatal("injected overload must wrap the overload sentinel")
	}
	if !overload.Liveness(err) {
		t.Fatal("a synthesized shed is still proof of life")
	}
	if !transport.Refused(err) {
		t.Fatal("a synthesized shed is a provable refusal")
	}
	if got := r.served.Load(); got != 0 {
		t.Fatalf("shed request reached the handler %d times", got)
	}
	if got := r.inj.Counts()[FaultOverload]; got != 1 {
		t.Fatalf("overload count = %d, want 1", got)
	}
	trail := r.inj.Trail()
	if len(trail) != 1 || trail[0].Fault != FaultOverload {
		t.Fatalf("trail = %+v", trail)
	}
}

func TestOverloadFaultRate(t *testing.T) {
	// At a partial rate the non-shed calls go through untouched and the
	// trail reconciles with the observed error count.
	r := newRig(t, Config{Seed: 11, P: Probabilities{Overload: 0.3}})
	var shed int64
	for i := 0; i < 200; i++ {
		if err := r.ping(t); errors.Is(err, overload.ErrOverloaded) {
			shed++
		} else if err != nil {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	if shed == 0 || shed == 200 {
		t.Fatalf("expected a mixture at rate 0.3, shed %d/200", shed)
	}
	if got := r.inj.Counts()[FaultOverload]; got != shed {
		t.Fatalf("counts=%d observed=%d", got, shed)
	}
	if got := r.served.Load(); got != 200-shed {
		t.Fatalf("served=%d, want %d", got, 200-shed)
	}
}
