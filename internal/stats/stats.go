// Package stats provides the small numeric and formatting helpers shared
// by the experiment harness (cmd/manbench) and the benchmarks: summary
// statistics over samples and fixed-width table rendering for the
// EXPERIMENTS.md outputs.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds order statistics over a sample set.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, P50     float64
	P95, P99     float64
	Max          float64
}

// QuantileOf returns the summary's precomputed value for q. Only the
// retained quantiles (0, 0.5, 0.95, 0.99, 1) are available; q picks the
// nearest of those, so SLO definitions stay honest about what was kept.
func (s Summary) QuantileOf(q float64) float64 {
	switch {
	case q <= 0.25:
		return s.Min
	case q <= 0.725:
		return s.P50
	case q <= 0.97:
		return s.P95
	case q <= 0.995:
		return s.P99
	default:
		return s.Max
	}
}

// Summarize computes a Summary; an empty input yields the zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Stddev: math.Sqrt(sq / float64(len(s))),
		Min:    s[0],
		P50:    Quantile(s, 0.50),
		P95:    Quantile(s, 0.95),
		P99:    Quantile(s, 0.99),
		Max:    s[len(s)-1],
	}
}

// Quantile interpolates the q-quantile of sorted samples.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Durations converts a duration slice to float seconds for Summarize.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Bytes renders a byte count in human units (KiB/MiB with one decimal).
func Bytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table renders aligned fixed-width rows. Build it with a header, add rows,
// and write it out.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}
