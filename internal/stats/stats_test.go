package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 {
		t.Fatalf("singleton: %+v", one)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Fatalf("P50 = %v", s.P50)
	}
	if math.Abs(s.P95-9.5) > 1e-9 {
		t.Fatalf("P95 = %v", s.P95)
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if ds[0] != 1 || ds[1] != 0.5 {
		t.Fatalf("durations = %v", ds)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2048:      "2.0KiB",
		3 << 20:   "3.0MiB",
		1536:      "1.5KiB",
		1<<20 + 1: "1.0MiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	tb.AddRow("dur", 1500*time.Microsecond)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator: %q", lines[1])
	}
	if !strings.Contains(out, "2.50") {
		t.Fatal("float formatting")
	}
	if !strings.Contains(out, "1.5ms") {
		t.Fatal("duration formatting")
	}
	// Columns align: "value" column starts at the same offset everywhere.
	col := strings.Index(lines[0], "value")
	if lines[2][col-1] != ' ' && lines[2][col] == ' ' {
		t.Fatalf("misaligned row: %q", lines[2])
	}
}

func TestPropSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			// Bound inputs so intermediate sums cannot overflow; the
			// harness never summarizes astronomically scaled samples.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
