// Package netsim is a simulated network fabric for the naplet system.
//
// The paper's quantitative claims (mobile agents reduce network load and
// overcome network latency relative to centralized client/server management)
// are functions of link latency, bandwidth, and the number and size of
// messages exchanged. netsim models exactly those quantities: every frame
// sent through the fabric is charged a modeled delay of
//
//	latency + encodedSize/bandwidth
//
// per direction, every byte is counted per host and per link, and losses and
// partitions can be injected. A TimeScale factor lets experiments model slow
// WAN links while sleeping only a fraction of the modeled time; all reported
// delays are in modeled time.
//
// netsim implements transport.Fabric, so the full naplet protocol stack runs
// over it unchanged.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/overload"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Link describes one directed link's characteristics.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the link rate in bytes per second; 0 means infinite.
	Bandwidth float64
	// Loss is the probability in [0,1) that a frame is dropped.
	Loss float64
}

// Transit returns the modeled one-way transit time of a frame of the given
// encoded size.
func (l Link) Transit(size int) time.Duration {
	d := l.Latency
	if l.Bandwidth > 0 {
		d += time.Duration(float64(size) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// Common link presets used by the experiments.
var (
	// LAN models a switched local network: 0.2 ms, 100 MB/s.
	LAN = Link{Latency: 200 * time.Microsecond, Bandwidth: 100e6}
	// WAN models a wide-area path: 20 ms, 1 MB/s.
	WAN = Link{Latency: 20 * time.Millisecond, Bandwidth: 1e6}
	// Loopback models in-host delivery: 10 µs, infinite bandwidth.
	Loopback = Link{Latency: 10 * time.Microsecond}
)

// Stats aggregates traffic counters for one host or one directed link.
type Stats struct {
	FramesSent int64
	FramesRecv int64
	BytesSent  int64
	BytesRecv  int64
	// Dropped counts frames lost in transit (sender side).
	Dropped int64
	// ModeledDelay accumulates the modeled transit time of all frames sent.
	ModeledDelay time.Duration
}

// add merges two stats; used when aggregating link stats into totals.
func (s *Stats) add(o Stats) {
	s.FramesSent += o.FramesSent
	s.FramesRecv += o.FramesRecv
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Dropped += o.Dropped
	s.ModeledDelay += o.ModeledDelay
}

// Config parameterizes a simulated network.
type Config struct {
	// DefaultLink applies to every host pair without an override.
	DefaultLink Link
	// TimeScale divides all real sleeps: a modeled delay d sleeps d/TimeScale.
	// 0 or negative means "do not sleep at all" (pure traffic accounting).
	TimeScale float64
	// Seed seeds the loss process. Experiments fix it for reproducibility.
	Seed int64
	// CallTimeout is the modeled time a caller waits before declaring a
	// lost frame a timeout. Defaults to 1s of modeled time.
	CallTimeout time.Duration
}

// Errors reported by the simulated fabric. A partition is a refusal at
// link setup — the frame never left, so it carries transport.ErrRefused;
// a timeout models a frame lost somewhere in flight, which a real caller
// cannot distinguish from a lost reply, so it stays ambiguous.
var (
	ErrTimeout     = errors.New("netsim: call timed out (frame lost)")
	ErrPartitioned = fmt.Errorf("netsim: hosts are partitioned (%w)", transport.ErrRefused)
)

// Network is an in-process simulated network. It implements
// transport.Fabric. Hosts are identified by arbitrary names.
type Network struct {
	cfg Config

	mu         sync.RWMutex
	nodes      map[string]*simNode
	links      map[[2]string]Link
	partitions map[[2]string]bool

	statsMu   sync.Mutex
	hostStats map[string]*Stats
	linkStats map[[2]string]*Stats

	rngMu sync.Mutex
	rng   *rand.Rand

	met atomic.Pointer[transport.Metrics]
}

// Instrument registers the fabric's traffic counters and per-kind call
// latency histograms in reg, using the same series names as the TCP
// fabric, so experiments over the simulated network and real deployments
// read identically on /metrics. Latency observations are wall-clock (the
// scaled simulated sleeps), matching what a caller actually waited.
func (n *Network) Instrument(reg *telemetry.Registry) {
	n.met.Store(transport.NewMetrics(reg))
}

// New creates a simulated network with the given configuration.
func New(cfg Config) *Network {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = time.Second
	}
	return &Network{
		cfg:        cfg,
		nodes:      make(map[string]*simNode),
		links:      make(map[[2]string]Link),
		partitions: make(map[[2]string]bool),
		hostStats:  make(map[string]*Stats),
		linkStats:  make(map[[2]string]*Stats),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
}

// SetLink overrides the link characteristics for the directed pair
// from→to. Use SetBidirectional for symmetric overrides.
func (n *Network) SetLink(from, to string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{from, to}] = l
}

// SetBidirectional overrides both directions between a and b.
func (n *Network) SetBidirectional(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// Partition cuts (or heals) both directions between a and b. While
// partitioned, calls between the hosts fail immediately with
// ErrPartitioned.
func (n *Network) Partition(a, b string, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cut {
		n.partitions[[2]string{a, b}] = true
		n.partitions[[2]string{b, a}] = true
	} else {
		delete(n.partitions, [2]string{a, b})
		delete(n.partitions, [2]string{b, a})
	}
}

// link resolves the effective link for from→to.
func (n *Network) link(from, to string) (Link, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.partitions[[2]string{from, to}] {
		return Link{}, fmt.Errorf("%w: %s -> %s", ErrPartitioned, from, to)
	}
	if from == to {
		return Loopback, nil
	}
	if l, ok := n.links[[2]string{from, to}]; ok {
		return l, nil
	}
	return n.cfg.DefaultLink, nil
}

// lose samples the loss process.
func (n *Network) lose(p float64) bool {
	if p <= 0 {
		return false
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64() < p
}

// sleep sleeps the modeled duration scaled by TimeScale.
func (n *Network) sleep(ctx context.Context, d time.Duration) error {
	if n.cfg.TimeScale <= 0 || d <= 0 {
		return ctx.Err()
	}
	real := time.Duration(float64(d) / n.cfg.TimeScale)
	if real <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(real)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// charge records traffic for one frame transit from→to.
func (n *Network) charge(from, to string, size int, transit time.Duration, dropped bool) {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	hs := n.hostStats[from]
	if hs == nil {
		hs = &Stats{}
		n.hostStats[from] = hs
	}
	ls := n.linkStats[[2]string{from, to}]
	if ls == nil {
		ls = &Stats{}
		n.linkStats[[2]string{from, to}] = ls
	}
	hs.FramesSent++
	hs.BytesSent += int64(size)
	hs.ModeledDelay += transit
	ls.FramesSent++
	ls.BytesSent += int64(size)
	ls.ModeledDelay += transit
	if dropped {
		hs.Dropped++
		ls.Dropped++
		return
	}
	rs := n.hostStats[to]
	if rs == nil {
		rs = &Stats{}
		n.hostStats[to] = rs
	}
	rs.FramesRecv++
	rs.BytesRecv += int64(size)
	ls.FramesRecv++
	ls.BytesRecv += int64(size)
}

// HostStats returns a copy of the traffic counters for one host.
func (n *Network) HostStats(host string) Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	if s := n.hostStats[host]; s != nil {
		return *s
	}
	return Stats{}
}

// LinkStats returns a copy of the counters for the directed link from→to.
func (n *Network) LinkStats(from, to string) Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	if s := n.linkStats[[2]string{from, to}]; s != nil {
		return *s
	}
	return Stats{}
}

// TotalStats aggregates counters over all hosts.
func (n *Network) TotalStats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	var total Stats
	for _, s := range n.hostStats {
		total.add(*s)
	}
	return total
}

// ResetStats zeroes all counters, typically between experiment phases.
func (n *Network) ResetStats() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.hostStats = make(map[string]*Stats)
	n.linkStats = make(map[[2]string]*Stats)
}

// Attach implements transport.Fabric.
func (n *Network) Attach(addr string, h transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("%w: %s", transport.ErrDuplicate, addr)
	}
	node := &simNode{net: n, addr: addr, handler: h}
	n.nodes[addr] = node
	return node, nil
}

// Detach removes a host from the network (used by failure-injection tests).
func (n *Network) Detach(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// node looks up an attached node.
func (n *Network) node(addr string) (*simNode, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[addr]
	return node, ok
}

type simNode struct {
	net     *Network
	addr    string
	handler transport.Handler
	closed  atomic.Bool
	seq     atomic.Uint64
}

func (s *simNode) Addr() string { return s.addr }

func (s *simNode) Call(ctx context.Context, to string, f wire.Frame) (wire.Frame, error) {
	if s.closed.Load() {
		return wire.Frame{}, transport.ErrNodeClosed
	}
	f.From = s.addr
	f.To = to
	f.Seq = s.seq.Add(1)
	if deadline, ok := ctx.Deadline(); ok {
		// Propagate the caller's remaining budget in the Seq high bits,
		// mirroring the TCP fabric (see wire.PackBudget).
		f.Seq = wire.PackBudget(f.Seq, time.Until(deadline))
	}

	met := s.net.met.Load()
	var start time.Time
	if met != nil {
		start = time.Now()
	}

	peer, ok := s.net.node(to)
	if !ok || peer.closed.Load() {
		return wire.Frame{}, fmt.Errorf("%w: %s", transport.ErrUnknownPeer, to)
	}
	link, err := s.net.link(s.addr, to)
	if err != nil {
		return wire.Frame{}, err
	}

	// Request leg.
	reqSize := f.EncodedSize()
	transit := link.Transit(reqSize)
	if s.net.lose(link.Loss) {
		s.net.charge(s.addr, to, reqSize, transit, true)
		if err := s.net.sleep(ctx, s.net.cfg.CallTimeout); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s (request)", ErrTimeout, s.addr, to)
	}
	s.net.charge(s.addr, to, reqSize, transit, false)
	if err := s.net.sleep(ctx, transit); err != nil {
		return wire.Frame{}, err
	}

	var reply wire.Frame
	if budget, ok := f.Budget(); ok && transit >= budget {
		// The modeled transit alone consumed the caller's whole budget:
		// the receiving server sheds the frame before dispatch, exactly
		// like the TCP fabric's pre-dispatch deadline check.
		met.DeadlineShed()
		reply = transport.ErrorReply(f, fmt.Errorf(
			"%w: %v transit exceeded %v budget", overload.ErrDeadlinePast, transit, budget))
	} else {
		f.ReceivedAt = time.Now()
		var herr error
		reply, herr = s.safeHandle(peer, f)
		if herr != nil {
			reply = transport.ErrorReply(f, herr)
		}
	}
	reply.Seq = f.Seq
	reply.From, reply.To = to, s.addr

	// Reply leg.
	back, err := s.net.link(to, s.addr)
	if err != nil {
		return wire.Frame{}, err
	}
	repSize := reply.EncodedSize()
	transit = back.Transit(repSize)
	if s.net.lose(back.Loss) {
		s.net.charge(to, s.addr, repSize, transit, true)
		if err := s.net.sleep(ctx, s.net.cfg.CallTimeout); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{}, fmt.Errorf("%w: %s -> %s (reply)", ErrTimeout, to, s.addr)
	}
	s.net.charge(to, s.addr, repSize, transit, false)
	if err := s.net.sleep(ctx, transit); err != nil {
		return wire.Frame{}, err
	}

	if met != nil {
		met.Sent(&f)
		met.Recv(&reply)
		met.ObserveCall(f.Kind, time.Since(start))
	}
	if werr := transport.IsErrorReply(f.Kind, reply); werr != nil {
		return reply, werr
	}
	return reply, nil
}

func (s *simNode) safeHandle(peer *simNode, req wire.Frame) (reply wire.Frame, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", transport.ErrHandlerPanic, r)
		}
	}()
	return peer.handler(req.From, req)
}

func (s *simNode) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.net.Detach(s.addr)
	return nil
}
