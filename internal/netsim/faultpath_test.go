package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestPartitionCutMidCallFailsReplyLeg(t *testing.T) {
	// The partition is cut while the handler runs: the request leg already
	// got through, so the side effect happened, but the reply leg must
	// fail. This is the organic form of the lost-acknowledgement fault the
	// retry/dedup machinery exists for.
	net := New(Config{})
	handled := 0
	_, err := net.Attach("b", func(from string, f wire.Frame) (wire.Frame, error) {
		handled++
		if handled == 1 {
			net.Partition("a", "b", true)
		}
		return wire.NewFrame(f.Kind, f.To, f.From, &echoBody{Text: "done"})
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Attach("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	_, err = a.Call(context.Background(), "b", req)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned on the reply leg, got %v", err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times; the request leg should have delivered", handled)
	}

	// The caller's retry after the heal completes normally.
	net.Partition("a", "b", false)
	if _, err := a.Call(context.Background(), "b", req); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if handled != 2 {
		t.Fatalf("handler ran %d times after retry, want 2", handled)
	}
}

func TestContextCancelInsideLossTimeout(t *testing.T) {
	// A lost frame parks the caller in the modeled CallTimeout sleep; the
	// caller's context must still be able to interrupt it promptly.
	cfg := Config{DefaultLink: Link{Loss: 1.0}, CallTimeout: time.Hour, TimeScale: 1}
	_, a, b := newPair(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	start := time.Now()
	_, err := a.Call(ctx, b.Addr(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from inside the loss sleep, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation inside the loss timeout must be prompt")
	}
}

func TestLossRateMetering(t *testing.T) {
	// Every lost frame must be charged to the sender and the directed link:
	// sent and dropped counters agree, and nothing reaches the receiver.
	cfg := Config{DefaultLink: Link{Loss: 1.0}, CallTimeout: time.Nanosecond}
	net, a, b := newPair(t, cfg)
	const calls = 20
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	for i := 0; i < calls; i++ {
		if _, err := a.Call(context.Background(), b.Addr(), req); !errors.Is(err, ErrTimeout) {
			t.Fatalf("call %d: want ErrTimeout, got %v", i, err)
		}
	}
	as, bs := net.HostStats("a"), net.HostStats("b")
	if as.FramesSent != calls || as.Dropped != calls {
		t.Fatalf("sender metering: sent=%d dropped=%d, want %d/%d", as.FramesSent, as.Dropped, calls, calls)
	}
	if bs.FramesRecv != 0 || bs.FramesSent != 0 {
		t.Fatalf("receiver saw traffic across a fully lossy link: %+v", bs)
	}
	ls := net.LinkStats("a", "b")
	if ls.FramesSent != calls || ls.Dropped != calls || ls.FramesRecv != 0 {
		t.Fatalf("link metering: %+v", ls)
	}
	// A partially lossy seeded link drops a reproducible strict subset.
	seeded := New(Config{DefaultLink: Link{Loss: 0.5}, Seed: 11, CallTimeout: time.Nanosecond})
	sa, _ := seeded.Attach("a", echoHandler)
	seeded.Attach("b", echoHandler)
	for i := 0; i < 40; i++ {
		f, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
		sa.Call(context.Background(), "b", f)
	}
	st := seeded.TotalStats()
	if st.Dropped == 0 || st.Dropped == st.FramesSent {
		t.Fatalf("seeded 0.5 loss dropped %d of %d frames", st.Dropped, st.FramesSent)
	}
}
