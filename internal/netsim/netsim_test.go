package netsim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

type echoBody struct {
	Text string
	Pad  []byte
}

func echoHandler(from string, f wire.Frame) (wire.Frame, error) {
	var body echoBody
	if err := f.Body(&body); err != nil {
		return wire.Frame{}, err
	}
	body.Text = "echo:" + body.Text
	return wire.NewFrame(f.Kind, f.To, f.From, &body)
}

// newPair attaches two echo nodes "a" and "b" on a fresh network.
func newPair(t *testing.T, cfg Config) (*Network, transport.Node, transport.Node) {
	t.Helper()
	net := New(cfg)
	a, err := net.Attach("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach("b", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	return net, a, b
}

func TestCallRoundTrip(t *testing.T) {
	_, a, b := newPair(t, Config{})
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hi"})
	reply, err := a.Call(context.Background(), b.Addr(), req)
	if err != nil {
		t.Fatal(err)
	}
	var body echoBody
	reply.Body(&body)
	if body.Text != "echo:hi" {
		t.Fatalf("reply = %q", body.Text)
	}
	if reply.From != "b" || reply.To != "a" {
		t.Fatalf("reply addressing: %s -> %s", reply.From, reply.To)
	}
}

func TestTrafficAccounting(t *testing.T) {
	net, a, b := newPair(t, Config{})
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "hi", Pad: make([]byte, 1000)})
	wantReq := req.EncodedSize()
	if _, err := a.Call(context.Background(), b.Addr(), req); err != nil {
		t.Fatal(err)
	}

	as := net.HostStats("a")
	bs := net.HostStats("b")
	if as.FramesSent != 1 || as.FramesRecv != 1 {
		t.Fatalf("a frames: %+v", as)
	}
	if bs.FramesSent != 1 || bs.FramesRecv != 1 {
		t.Fatalf("b frames: %+v", bs)
	}
	// Sent bytes from a must be at least the padded request size. Frame
	// headers (From/To/Seq) are filled by the fabric so the on-wire size can
	// exceed the preview, never undercut it meaningfully.
	if as.BytesSent < int64(wantReq)-64 {
		t.Fatalf("a sent %d bytes, request preview %d", as.BytesSent, wantReq)
	}
	if bs.BytesRecv != as.BytesSent {
		t.Fatalf("conservation: a sent %d, b recv %d", as.BytesSent, bs.BytesRecv)
	}
	if as.BytesRecv != bs.BytesSent {
		t.Fatalf("conservation: b sent %d, a recv %d", bs.BytesSent, as.BytesRecv)
	}
	ls := net.LinkStats("a", "b")
	if ls.FramesSent != 1 || ls.BytesSent != as.BytesSent {
		t.Fatalf("link stats: %+v", ls)
	}
	total := net.TotalStats()
	if total.FramesSent != 2 {
		t.Fatalf("total frames sent = %d", total.FramesSent)
	}
}

func TestModeledDelayAccumulates(t *testing.T) {
	// TimeScale 0: no real sleeping, but modeled delay must still accrue.
	net, a, b := newPair(t, Config{DefaultLink: WAN})
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: "x"})
	start := time.Now()
	if _, err := a.Call(context.Background(), b.Addr(), req); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Fatalf("TimeScale=0 must not sleep, took %v", elapsed)
	}
	as := net.HostStats("a")
	if as.ModeledDelay < WAN.Latency {
		t.Fatalf("modeled delay %v < link latency %v", as.ModeledDelay, WAN.Latency)
	}
}

func TestTimeScaleSleeps(t *testing.T) {
	// 10ms modeled latency at scale 10 → ~1ms per direction of real sleep.
	cfg := Config{DefaultLink: Link{Latency: 10 * time.Millisecond}, TimeScale: 10}
	_, a, b := newPair(t, cfg)
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	start := time.Now()
	if _, err := a.Call(context.Background(), b.Addr(), req); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 1500*time.Microsecond {
		t.Fatalf("expected ≥ ~2ms of scaled sleep, got %v", elapsed)
	}
}

func TestTransitIncludesBandwidth(t *testing.T) {
	l := Link{Latency: time.Millisecond, Bandwidth: 1e6} // 1 MB/s
	d := l.Transit(1e6)
	if d < time.Second || d > time.Second+2*time.Millisecond {
		t.Fatalf("1MB over 1MB/s = %v, want ~1s+latency", d)
	}
	inf := Link{Latency: time.Millisecond}
	if inf.Transit(1e9) != time.Millisecond {
		t.Fatal("zero bandwidth must mean infinite rate")
	}
}

func TestLossDeterministicTimeout(t *testing.T) {
	cfg := Config{DefaultLink: Link{Loss: 1.0}, CallTimeout: time.Millisecond}
	net, a, b := newPair(t, cfg)
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	_, err := a.Call(context.Background(), b.Addr(), req)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if net.HostStats("a").Dropped != 1 {
		t.Fatalf("dropped count: %+v", net.HostStats("a"))
	}
	if net.HostStats("b").FramesRecv != 0 {
		t.Fatal("lost frame must not be delivered")
	}
}

func TestLossSeedReproducible(t *testing.T) {
	run := func(seed int64) int {
		cfg := Config{DefaultLink: Link{Loss: 0.5}, Seed: seed, CallTimeout: time.Nanosecond}
		net := New(cfg)
		a, _ := net.Attach("a", echoHandler)
		net.Attach("b", echoHandler)
		lost := 0
		for i := 0; i < 50; i++ {
			req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
			if _, err := a.Call(context.Background(), "b", req); err != nil {
				lost++
			}
		}
		return lost
	}
	if run(7) != run(7) {
		t.Fatal("same seed must reproduce the same loss pattern")
	}
}

func TestPartition(t *testing.T) {
	net, a, b := newPair(t, Config{})
	net.Partition("a", "b", true)
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	if _, err := a.Call(context.Background(), "b", req); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	if _, err := b.Call(context.Background(), "a", req); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partition must be bidirectional, got %v", err)
	}
	net.Partition("a", "b", false)
	if _, err := a.Call(context.Background(), "b", req); err != nil {
		t.Fatalf("healed partition: %v", err)
	}
}

func TestLinkOverride(t *testing.T) {
	net, a, b := newPair(t, Config{DefaultLink: LAN})
	net.SetBidirectional("a", "b", WAN)
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	if _, err := a.Call(context.Background(), b.Addr(), req); err != nil {
		t.Fatal(err)
	}
	if d := net.HostStats("a").ModeledDelay; d < WAN.Latency {
		t.Fatalf("override not applied: modeled %v", d)
	}
}

func TestUnknownAndClosedPeers(t *testing.T) {
	net, a, _ := newPair(t, Config{})
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	if _, err := a.Call(context.Background(), "ghost", req); !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("want ErrUnknownPeer, got %v", err)
	}
	c, _ := net.Attach("c", echoHandler)
	c.Close()
	if _, err := a.Call(context.Background(), "c", req); !errors.Is(err, transport.ErrUnknownPeer) {
		t.Fatalf("closed peer: %v", err)
	}
	if _, err := c.Call(context.Background(), "a", req); !errors.Is(err, transport.ErrNodeClosed) {
		t.Fatalf("closed self: %v", err)
	}
}

func TestDuplicateAttach(t *testing.T) {
	net := New(Config{})
	if _, err := net.Attach("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach("a", echoHandler); !errors.Is(err, transport.ErrDuplicate) {
		t.Fatalf("want ErrDuplicate, got %v", err)
	}
}

func TestHandlerErrorAndPanic(t *testing.T) {
	net := New(Config{})
	net.Attach("bad", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, fmt.Errorf("refused")
	})
	net.Attach("boom", func(from string, f wire.Frame) (wire.Frame, error) {
		panic("naplet bug")
	})
	a, _ := net.Attach("a", echoHandler)
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})

	_, err := a.Call(context.Background(), "bad", req)
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("handler error: %v", err)
	}
	_, err = a.Call(context.Background(), "boom", req)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("handler panic: %v", err)
	}
}

func TestLoopbackLink(t *testing.T) {
	net := New(Config{DefaultLink: WAN})
	a, _ := net.Attach("a", echoHandler)
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	if _, err := a.Call(context.Background(), "a", req); err != nil {
		t.Fatal(err)
	}
	// Self-calls use the loopback link, far below WAN latency.
	if d := net.HostStats("a").ModeledDelay; d >= WAN.Latency {
		t.Fatalf("loopback modeled delay too high: %v", d)
	}
}

func TestResetStats(t *testing.T) {
	net, a, b := newPair(t, Config{})
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	a.Call(context.Background(), b.Addr(), req)
	net.ResetStats()
	if s := net.TotalStats(); s.FramesSent != 0 || s.BytesSent != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}
}

func TestContextCancellation(t *testing.T) {
	cfg := Config{DefaultLink: Link{Latency: time.Hour}, TimeScale: 1}
	_, a, b := newPair(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{})
	start := time.Now()
	_, err := a.Call(ctx, b.Addr(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation must be prompt")
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := New(Config{})
	for i := 0; i < 8; i++ {
		net.Attach(fmt.Sprintf("s%d", i), echoHandler)
	}
	a, _ := net.Attach("a", echoHandler)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := wire.NewFrame(wire.KindPost, "", "", &echoBody{Text: fmt.Sprint(i)})
			reply, err := a.Call(context.Background(), fmt.Sprintf("s%d", i%8), req)
			if err != nil {
				t.Error(err)
				return
			}
			var body echoBody
			reply.Body(&body)
			if body.Text != "echo:"+fmt.Sprint(i) {
				t.Errorf("cross-talk: %q", body.Text)
			}
		}(i)
	}
	wg.Wait()
	if got := net.HostStats("a").FramesSent; got != 64 {
		t.Fatalf("frames sent = %d", got)
	}
}
