// Infocollect reproduces the three itinerary examples of §3 of the Naplet
// paper with a mobile information-collection application:
//
//   - Example 1: a single agent accumulates information over servers
//     s1..sn in sequence and reports after the last visit.
//   - Example 2: the servers are visited by multiple agents
//     simultaneously (a clone per server), each reporting home directly.
//   - Example 3: four servers visited by two naplets following
//     par(seq(s0, s1), seq(s2, s3)).
//
// Run it with:
//
//	go run ./examples/infocollect
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
)

// collectAgent gathers a per-server measurement (here: the server's
// simulated load reading from an open service) into its private state.
type collectAgent struct{}

func (collectAgent) OnStart(ctx *naplet.Context) error {
	load, err := ctx.Services.CallOpen("workload", nil)
	if err != nil {
		load = "n/a"
	}
	var collected []string
	ctx.State().Load("collected", &collected)
	collected = append(collected, ctx.Server+"="+load)
	return ctx.State().SetPrivate("collected", collected)
}

func (collectAgent) OnDestroy(ctx *naplet.Context) {
	var collected []string
	ctx.State().Load("collected", &collected)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(collected, ",")))
}

func buildSpace(names []string) (*netsim.Network, map[string]*server.Server, error) {
	net := netsim.New(netsim.Config{DefaultLink: netsim.LAN})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name: "example.Collector",
		New:  func() naplet.Behavior { return collectAgent{} },
		Actions: map[string]registry.ActionFunc{
			// The paper's DataComm operator: after each visit the naplets
			// exchange their latest findings (§3 Example 3).
			"DataComm": func(ctx *naplet.Context) error {
				msgs, err := naplet.AllExchange(ctx, "findings", []byte(ctx.Server))
				if err != nil {
					return err
				}
				var peers []string
				for _, m := range msgs {
					peers = append(peers, string(m.Body))
				}
				return ctx.State().SetPrivate("lastSync", peers)
			},
		},
	})
	servers := make(map[string]*server.Server, len(names))
	for i, name := range names {
		srv, err := server.New(server.Config{Name: name, Fabric: net, Registry: reg})
		if err != nil {
			return nil, nil, err
		}
		// Each host exposes a "workload" open service with a fixed
		// simulated reading.
		load := fmt.Sprintf("%d%%", 10+i*7)
		srv.Resources().RegisterOpen("workload", func([]string) (string, error) {
			return load, nil
		})
		servers[name] = srv
	}
	return net, servers, nil
}

// run launches the pattern and waits for `reports` reports.
func run(home *server.Server, pattern *itinerary.Pattern, reports int) ([]string, error) {
	got := make(chan string, reports)
	_, err := home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "czxu",
		Codebase: "example.Collector",
		Pattern:  pattern,
		Listener: func(r manager.Result) { got <- string(r.Body) },
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for i := 0; i < reports; i++ {
		select {
		case r := <-got:
			out = append(out, r)
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("timeout waiting for report %d/%d", i+1, reports)
		}
	}
	sort.Strings(out)
	return out, nil
}

func main() {
	names := []string{"home", "s0", "s1", "s2", "s3"}
	net, servers, err := buildSpace(names)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	home := servers["home"]
	targets := names[1:]

	// Example 1: sequential accumulation, one report at the end.
	net.ResetStats()
	reports, err := run(home, itinerary.SeqVisits(targets, ""), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 1 (seq, single agent):")
	fmt.Println(" ", reports[0])
	fmt.Printf("  traffic: %d frames\n\n", net.TotalStats().FramesSent)

	// Example 2: parallel broadcast, one clone per server, individual
	// reports.
	net.ResetStats()
	reports, err = run(home, itinerary.ParVisits(targets, ""), len(targets))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 2 (par, one clone per server):")
	for _, r := range reports {
		fmt.Println(" ", r)
	}
	fmt.Printf("  traffic: %d frames\n\n", net.TotalStats().FramesSent)

	// Example 3: par(seq(s0,s1), seq(s2,s3)) — two naplets, two stops
	// each.
	net.ResetStats()
	// As in the paper, the two naplets synchronize with DataComm after
	// every visit.
	pattern := itinerary.Par(
		itinerary.SeqVisits([]string{"s0", "s1"}, "DataComm"),
		itinerary.SeqVisits([]string{"s2", "s3"}, "DataComm"),
	)
	fmt.Println("Example 3 itinerary:", pattern)
	reports, err = run(home, pattern, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(" ", r)
	}
	fmt.Printf("  traffic: %d frames\n", net.TotalStats().FramesSent)
}
