// Shopping reproduces the paper's §2.1 motivating scenario: "a shopping
// agent that visits hosts to collect price information about a product
// would keep the gathered data in a private access state. The gathered
// information can also be stored in a protected state so that a naplet
// server can update a returning naplet with new information."
//
// The agent tours vendor servers collecting quotes into *private* state
// (vendors cannot read competitors' prices off the agent), publishes its
// shopping query as *public* state (any server may read it), and keeps a
// *protected* channel entry only its home server may update. After the
// tour it returns home, picks the best quote, and reports.
//
// Run it with:
//
//	go run ./examples/shopping
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/state"
)

// shopper is the shopping agent.
type shopper struct{}

func (shopper) OnStart(ctx *naplet.Context) error {
	if ctx.Server == ctx.Record.Home {
		// Back home: choose the best quote.
		return shopper{}.settle(ctx)
	}
	// Ask the vendor's quote service for the product named in our PUBLIC
	// query state (vendors may legitimately read what we are shopping for).
	product, err := ctx.State().Get("query")
	if err != nil {
		return err
	}
	quote, err := ctx.Services.CallOpen("quote", []string{product.(string)})
	if err != nil {
		return err
	}
	// Record the quote in PRIVATE state: the next vendor cannot see it.
	quotes := map[string]string{}
	ctx.State().Load("quotes", &quotes)
	quotes[ctx.Server] = quote
	return ctx.State().SetPrivate("quotes", quotes)
}

func (shopper) settle(ctx *naplet.Context) error {
	quotes := map[string]string{}
	if err := ctx.State().Load("quotes", &quotes); err != nil {
		return err
	}
	bestVendor, bestPrice := "", 1<<31
	vendors := make([]string, 0, len(quotes))
	for v := range quotes {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	var lines []string
	for _, v := range vendors {
		p, err := strconv.Atoi(quotes[v])
		if err != nil {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s: $%d", v, p))
		if p < bestPrice {
			bestVendor, bestPrice = v, p
		}
	}
	report := fmt.Sprintf("quotes [%s]; best: %s at $%d",
		strings.Join(lines, ", "), bestVendor, bestPrice)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return ctx.Listener.Report(rctx, []byte(report))
}

func main() {
	net := netsim.New(netsim.Config{DefaultLink: netsim.LAN})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name: "example.Shopper",
		New:  func() naplet.Behavior { return shopper{} },
	})

	// Home plus three vendor servers, each with its own price list.
	prices := map[string]map[string]int{
		"acme":    {"widget": 42, "gadget": 99},
		"globex":  {"widget": 37, "gadget": 120},
		"initech": {"widget": 45, "gadget": 80},
	}
	servers := map[string]*server.Server{}
	for _, name := range []string{"home", "acme", "globex", "initech"} {
		srv, err := server.New(server.Config{Name: name, Fabric: net, Registry: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		if list, ok := prices[name]; ok {
			srv.Resources().RegisterOpen("quote", func(args []string) (string, error) {
				if len(args) == 0 {
					return "", fmt.Errorf("quote: no product")
				}
				p, ok := list[args[0]]
				if !ok {
					return "", fmt.Errorf("quote: no such product %q", args[0])
				}
				return strconv.Itoa(p), nil
			})
		}
		servers[name] = srv
	}

	// Demonstrate the protection modes from the vendor's point of view.
	report := make(chan string, 1)
	nid, err := servers["home"].Launch(context.Background(), server.LaunchOptions{
		Owner:    "czxu",
		Codebase: "example.Shopper",
		Pattern:  itinerary.SeqVisits([]string{"acme", "globex", "initech", "home"}, ""),
		InitState: func(s *state.State) error {
			// Public: any visited server may read the query.
			if err := s.SetPublic("query", "widget"); err != nil {
				return err
			}
			// Private: quotes are the agent's business only.
			if err := s.SetPrivate("quotes", map[string]string{}); err != nil {
				return err
			}
			// Protected: only home may update this entry on return.
			return s.SetProtected("homeNotes", "v1", "home")
		},
		Listener: func(r manager.Result) { report <- string(r.Body) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shopper launched:", nid)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := servers["home"].WaitDone(ctx, nid); err != nil {
		log.Fatal(err)
	}
	fmt.Println(<-report)

	// Show what a vendor server could and could not have seen.
	demo := state.New()
	demo.SetPublic("query", "widget")
	demo.SetPrivate("quotes", map[string]string{"acme": "42"})
	demo.SetProtected("homeNotes", "v1", "home")
	vendorView := demo.ServerView("globex")
	fmt.Println("\nvendor's view of the agent state:")
	fmt.Println("  readable keys:", vendorView.Keys())
	if _, err := vendorView.Get("quotes"); err != nil {
		fmt.Println("  quotes:", err)
	}
	if _, err := vendorView.Get("homeNotes"); err != nil {
		fmt.Println("  homeNotes:", err)
	}
	homeView := demo.ServerView("home")
	if v, err := homeView.Get("homeNotes"); err == nil {
		fmt.Printf("  (home's view of homeNotes: %v — protected entries are per-server)\n", v)
	}
}
