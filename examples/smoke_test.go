// Package examples_test smoke-tests every example program: each must
// build and run to completion with a zero exit status. The examples are
// the repo's first-contact documentation, so a refactor that breaks one
// fails CI here instead of on a reader's terminal.
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example programs in -short mode")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			if _, err := os.Stat(filepath.Join(dir, "main.go")); err != nil {
				t.Skipf("%s has no main.go", dir)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out\noutput:\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\noutput:\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
