// Parsearch demonstrates the paper's §3 parallel-search scenario: "in the
// case of a parallel search, naplets need to communicate with each other
// about their latest search results. Success of the search in a naplet may
// need to terminate the execution of the others."
//
// A fleet of searcher naplets fans out over the server space looking for a
// document. The first to find it reports home; the owner then terminates
// the rest of the fleet with system messages.
//
// Run it with:
//
//	go run ./examples/parsearch
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/itinerary"
	"repro/internal/locator"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/state"
)

// searchAgent probes each server's "library" service for its target. When
// it finds the target it reports home immediately; otherwise it dwells
// briefly (a realistic search takes time) and travels on.
type searchAgent struct{}

func (searchAgent) OnStart(ctx *naplet.Context) error {
	var target string
	if err := ctx.State().Load("target", &target); err != nil {
		return err
	}
	result, err := ctx.Services.CallOpen("library", []string{target})
	if err != nil {
		return err
	}
	if result != "" {
		rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := ctx.Listener.Report(rctx, []byte("found "+target+" at "+ctx.Server+": "+result)); err != nil {
			return err
		}
		ctx.State().SetPrivate("done", true)
		return nil
	}
	// Dwell: remain interruptible so a terminate cast lands promptly.
	select {
	case <-time.After(20 * time.Millisecond):
	case <-ctx.Cancel.Done():
		return ctx.Cancel.Err()
	}
	return nil
}

func main() {
	const fleets = 3 // three branches, three searchers
	net := netsim.New(netsim.Config{DefaultLink: netsim.LAN})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name: "example.Searcher",
		New:  func() naplet.Behavior { return searchAgent{} },
	})

	// Twelve library servers; the document lives on shelf7.
	var names []string
	for i := 0; i < 12; i++ {
		names = append(names, fmt.Sprintf("shelf%d", i))
	}
	servers := map[string]*server.Server{}
	for _, name := range append([]string{"home"}, names...) {
		srv, err := server.New(server.Config{
			Name: name, Fabric: net, Registry: reg,
			// Home-manager location mode so terminate messages can find
			// the moving searchers.
			LocatorMode: locator.ModeHome,
			ReportHome:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		has := name == "shelf7"
		srv.Resources().RegisterOpen("library", func(args []string) (string, error) {
			if has && len(args) > 0 && args[0] == "naplet-paper" {
				return "IPDPS 2002, pp. 77–84", nil
			}
			return "", nil
		})
		servers[name] = srv
	}
	home := servers["home"]

	// Partition the shelves among three parallel branches: the fleet is a
	// single Par itinerary, so the clones share lineage and the owner can
	// terminate them by identifier.
	branches := make([]*itinerary.Pattern, fleets)
	for i := 0; i < fleets; i++ {
		var route []string
		for j := i; j < len(names); j += fleets {
			route = append(route, names[j])
		}
		branches[i] = itinerary.SeqVisits(route, "")
	}

	found := make(chan string, fleets)
	nid, err := home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "czxu",
		Codebase: "example.Searcher",
		Pattern:  itinerary.Par(branches...),
		InitState: func(s *state.State) error {
			return s.SetPrivate("target", "naplet-paper")
		},
		Listener: func(r manager.Result) { found <- string(r.Body) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fleet launched:", nid, "with", fleets, "parallel branches")

	// Wait for the first success, then terminate the rest of the fleet.
	var result string
	select {
	case result = <-found:
	case <-time.After(30 * time.Second):
		log.Fatal("search timed out")
	}
	fmt.Println("SUCCESS:", result)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	terminated := 0
	for k := 0; k <= fleets; k++ {
		target := nid
		if k > 0 {
			target, _ = nid.Clone(k)
		}
		if err := home.Control(ctx, target, naplet.ControlTerminate); err == nil {
			terminated++
		}
	}
	fmt.Printf("terminate casts delivered to %d fleet members\n", terminated)
	if !strings.Contains(result, "shelf7") {
		log.Fatalf("unexpected result %q", result)
	}
}
