// Netmanage runs the paper's §6 application end to end: mobile-agent based
// network management (MAN, Figure 3) against a simulated managed network,
// side by side with the conventional centralized SNMP approach (CNMP).
//
// The testbed hosts eight managed devices, each running a naplet server
// with the NetManagement privileged service over its local SNMP agent, and
// an SNMP daemon reachable over the (simulated) network. The example
// collects the same MIB variables three ways — CNMP micro-management, a
// sequential NMNaplet tour, and the paper's broadcast itinerary — and
// compares correctness and network cost.
//
// Run it with:
//
//	go run ./examples/netmanage
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cnmp"
	"repro/internal/man"
	"repro/internal/netsim"
	"repro/internal/snmp"
	"repro/internal/stats"
)

func main() {
	tb, err := man.NewTestbed(man.TestbedConfig{
		Devices:    8,
		Interfaces: 4,
		ExtraVars:  16,
		Link:       netsim.WAN, // management station far from the devices
		Seed:       7,
		BundleSize: 8 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()

	// Let the devices accumulate some workload history.
	for i := 0; i < 10; i++ {
		tb.Tick(time.Second)
	}
	oids := tb.QueryOIDs(12)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	table := stats.NewTable("approach", "agents", "station bytes", "total bytes", "frames")

	// Conventional centralized SNMP (micro-management).
	tb.Net.ResetStats()
	cnmpReport, cst, err := tb.CNMP.Collect(ctx, tb.ResponderNames, oids, cnmp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := tb.Net.HostStats(man.CNMPHost)
	table.AddRow("CNMP micro-management", fmt.Sprintf("0 (%d RPCs)", cst.Requests),
		stats.Bytes(st.BytesSent+st.BytesRecv), stats.Bytes(tb.Net.TotalStats().BytesSent),
		tb.Net.TotalStats().FramesSent)

	// MAN: sequential NMNaplet tour.
	tb.Net.ResetStats()
	seqReport, mst, err := tb.Station.CollectSequential(ctx, tb.DeviceNames, oids)
	if err != nil {
		log.Fatal(err)
	}
	st = tb.Net.HostStats(man.StationHost)
	table.AddRow("MAN sequential tour", mst.Agents,
		stats.Bytes(st.BytesSent+st.BytesRecv), stats.Bytes(tb.Net.TotalStats().BytesSent),
		tb.Net.TotalStats().FramesSent)

	// MAN: broadcast itinerary (paper §6.2's NMItinerary).
	tb.Net.ResetStats()
	bcastReport, bst, err := tb.Station.CollectBroadcast(ctx, tb.DeviceNames, oids)
	if err != nil {
		log.Fatal(err)
	}
	st = tb.Net.HostStats(man.StationHost)
	table.AddRow("MAN broadcast (clone/device)", bst.Agents,
		stats.Bytes(st.BytesSent+st.BytesRecv), stats.Bytes(tb.Net.TotalStats().BytesSent),
		tb.Net.TotalStats().FramesSent)

	fmt.Println("Management sweep:", len(tb.DeviceNames), "devices x", len(oids), "MIB variables (WAN links)")
	fmt.Println()
	fmt.Print(table.String())

	// Cross-check: all three approaches saw the same device state (modulo
	// the ticking sysUpTime).
	mismatches := 0
	for i, dev := range tb.DeviceNames {
		for _, oid := range oids {
			if oid.Equal(snmp.OIDSysUpTime) {
				continue
			}
			k := oid.String()
			a := cnmpReport[tb.ResponderNames[i]][k]
			b := seqReport[dev][k]
			c := bcastReport[dev][k]
			if a != b || b != c {
				mismatches++
			}
		}
	}
	fmt.Printf("\ncross-check: %d mismatches across %d readings\n",
		mismatches, len(tb.DeviceNames)*(len(oids)-1))
	if mismatches > 0 {
		log.Fatal("approaches disagree")
	}

	// Show a slice of the collected data.
	fmt.Println("\nsysName / ifNumber per device (from the MAN broadcast):")
	for _, dev := range bcastReport.SortedDevices() {
		fmt.Printf("  %-6s %s (%s interfaces)\n", dev,
			bcastReport[dev][snmp.OIDSysName.String()],
			bcastReport[dev][snmp.OIDIfNumber.String()])
	}
}
