// Quickstart: launch one mobile agent across three naplet servers and
// collect its report.
//
// The example builds an in-process naplet space on the simulated network
// fabric, registers a tiny agent codebase, launches the agent on a
// sequential itinerary, and prints the report it sends home — the smallest
// end-to-end use of the framework.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/server"
)

// greeter is the agent: at every server it appends a greeting to its
// private state; when its itinerary completes it reports home.
type greeter struct{}

func (greeter) OnStart(ctx *naplet.Context) error {
	var greetings []string
	ctx.State().Load("greetings", &greetings)
	greetings = append(greetings, "hello from "+ctx.Server)
	return ctx.State().SetPrivate("greetings", greetings)
}

func (greeter) OnDestroy(ctx *naplet.Context) {
	var greetings []string
	ctx.State().Load("greetings", &greetings)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte(strings.Join(greetings, "; ")))
}

func main() {
	// A simulated network with LAN links, and a shared codebase registry.
	net := netsim.New(netsim.Config{DefaultLink: netsim.LAN})
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name: "example.Greeter",
		New:  func() naplet.Behavior { return greeter{} },
	})

	// One home server plus three hosts for the agent to visit.
	var servers []*server.Server
	for _, name := range []string{"home", "alpha", "beta", "gamma"} {
		srv, err := server.New(server.Config{Name: name, Fabric: net, Registry: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
	}
	home := servers[0]

	// Launch the agent on a sequential tour and wait for its report.
	report := make(chan string, 1)
	nid, err := home.Launch(context.Background(), server.LaunchOptions{
		Owner:    "alice",
		Codebase: "example.Greeter",
		Pattern:  itinerary.SeqVisits([]string{"alpha", "beta", "gamma"}, ""),
		Listener: func(r manager.Result) { report <- string(r.Body) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("launched naplet", nid)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	status, err := home.WaitDone(ctx, nid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final status:", status)
	fmt.Println("report:", <-report)
	fmt.Printf("network cost: %d frames, %d bytes\n",
		net.TotalStats().FramesSent, net.TotalStats().BytesSent)
}
