// Package repro is a Go reproduction of "Naplet: A Flexible Mobile Agent
// Framework for Network-Centric Applications" (C.-Z. Xu, IPDPS 2002).
//
// The library implements the paper's full system: the Naplet agent
// abstraction with hierarchical identifiers, credentials, protected state,
// address books and navigation logs (internal/naplet, internal/id,
// internal/cred, internal/state); the structured itinerary mechanism with
// Singleton/Seq/Alt/Par composition (internal/itinerary); the NapletServer
// of Figure 2 and its seven components (internal/server and the packages it
// composes); the location and post-office messaging services of §4
// (internal/directory, internal/locator, internal/messenger); the security
// and resource management of §5 (internal/security, internal/monitor,
// internal/resource); and the §6 network-management application with its
// SNMP substrate and centralized baseline (internal/snmp, internal/man,
// internal/cnmp).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate each experiment's headline measurement;
// cmd/manbench prints the full tables.
package repro
