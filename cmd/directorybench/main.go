// Command directorybench benchmarks the location plane at naplet-space
// scale: one million registered naplets under concurrent register load
// with dock churn (servers draining withdraw their registrations, the way
// a real space behaves). Two planes are measured in-process:
//
//   - single-node: the pre-shard design — one map behind one global
//     sync.Mutex, DeregisterServer an O(all-entries) scan. Reimplemented
//     here verbatim so the baseline survives in the report after the
//     production code moved on. Every client in the space funnels into
//     this one service, so its measured rate IS the plane's aggregate
//     capacity.
//   - sharded: the production directory.Service (striped locks, by-server
//     secondary index) sharded by rendezvous hashing over the owner/home
//     prefix, each registration written through to a replica group. One
//     shard node is measured serving exactly its share of the keyspace
//     and traffic (K*R/N registered entries, primary lookups for K/N
//     keys, its slice of the drain broadcasts); the plane's aggregate is
//     that per-node rate times the shard count, since the N nodes serve
//     disjoint traffic concurrently on separate hosts. Aggregate register
//     throughput divides by R: each logical registration writes through
//     to R replicas.
//
// The workload measures aggregate lookup throughput and p99 lookup
// latency while writers re-register moving naplets and periodically drain
// a dock. Under the global mutex every drain stalls all lookups for the
// full scan; a shard node pays an O(own entries for that dock) indexed
// delete per stripe. Results land in BENCH_directory.json via `make
// bench-directory`; generation self-asserts the sharded plane's aggregate
// lookup throughput at >= 4x the single-node baseline.
//
// With -check <file>, the deterministic codec and ring benchmarks are
// re-run and compared against the committed baseline: a >10% regression
// in allocs/op fails the run (ns/op is reported but not gated).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchcheck"
	"repro/internal/directory"
	"repro/internal/directory/shard"
	"repro/internal/id"
	"repro/internal/wire"
)

// report extends the shared envelope with the workload shape and the
// self-asserted speedup.
type report struct {
	benchcheck.Report
	Naplets  int     `json:"naplets"`
	Workload string  `json:"workload"`
	LookupX  float64 `json:"lookup_speedup"`
}

func main() {
	count := flag.Int("count", 5, "samples per benchmark")
	naplets := flag.Int("naplets", 1_000_000, "registered naplets per plane")
	duration := flag.Duration("duration", time.Second, "measured window per throughput sample")
	shards := flag.Int("shards", 8, "shard count of the sharded plane")
	replicas := flag.Int("replicas", 2, "replica-group size of the sharded plane")
	out := flag.String("o", "BENCH_directory.json", "output JSON path")
	check := flag.String("check", "", "baseline JSON to regression-check against (codec/ring benches only)")
	flag.Parse()

	benches := []benchcheck.Bench{
		{Name: "codec/register-encode-binary", Fn: benchRegisterEncodeBinary, Deterministic: true},
		{Name: "codec/register-decode-binary", Fn: benchRegisterDecodeBinary, Deterministic: true},
		{Name: "codec/reply-roundtrip-binary", Fn: benchReplyRoundTripBinary, Deterministic: true},
		{Name: "codec/register-roundtrip-gob", Fn: benchRegisterRoundTripGob, Deterministic: true},
		{Name: "ring/owners", Fn: benchRingOwners, Deterministic: true},
	}
	if *check != "" {
		if err := benchcheck.Check("directorybench", *check, benches, *count); err != nil {
			fatal(err)
		}
		fmt.Println("directorybench: regression check passed")
		return
	}

	rep := report{
		Report:  benchcheck.NewReport(*count),
		Naplets: *naplets,
		Workload: fmt.Sprintf(
			"%d naplets, %d readers + %d writers, dock drain every %d registers",
			*naplets, readers, writers, drainEvery),
	}
	for _, bm := range benches {
		res := benchcheck.Run(bm, *count)
		rep.Results = append(rep.Results, res)
		printRow(res)
	}

	fmt.Printf("populating %d naplets per plane...\n", *naplets)
	ids := makeIDs(*naplets)
	singleRes, shardedRes := throughput(ids, *shards, *replicas, *duration, *count)
	rep.Results = append(rep.Results, singleRes...)
	rep.Results = append(rep.Results, shardedRes...)
	for _, res := range append(singleRes, shardedRes...) {
		printRow(res)
	}

	rep.LookupX = shardedRes[0].Median.OpsPerSec / singleRes[0].Median.OpsPerSec
	fmt.Printf("sharded/single lookup speedup: %.1fx\n", rep.LookupX)

	if err := benchcheck.WriteFile(*out, &rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if rep.LookupX < 4 {
		fatal(fmt.Errorf("sharded lookup throughput only %.1fx the single-node baseline, want >= 4x", rep.LookupX))
	}
}

func printRow(res benchcheck.Result) {
	if res.Median.OpsPerSec > 0 {
		fmt.Printf("%-44s %12.0f ops/s  p99 %8s  %6d allocs/op\n",
			res.Name, res.Median.OpsPerSec, time.Duration(res.Median.P99Ns), res.Median.AllocsPerOp)
		return
	}
	fmt.Printf("%-34s %12.1f ns/op %8d B/op %6d allocs/op\n",
		res.Name, res.Median.NsPerOp, res.Median.BytesPerOp, res.Median.AllocsPerOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "directorybench:", err)
	os.Exit(1)
}

// benchTime is fixed so identifiers and bodies are identical across runs.
var benchTime = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// Workload shape. One writer is plenty to keep register pressure on while
// the readers measure; the drain cadence models dock restarts in a large
// space (each drain withdraws one server's ~naplets/servers entries).
const (
	readers    = 4
	writers    = 2
	servers    = 64
	drainEvery = 50_000
	p99Stride  = 32
)

// makeIDs builds n distinct naplet identifiers across many owner/home
// prefixes, so rendezvous hashing spreads them over every shard.
func makeIDs(n int) []id.NapletID {
	ids := make([]id.NapletID, n)
	for i := range ids {
		owner := fmt.Sprintf("u%d", i%100000)
		host := fmt.Sprintf("h%d", i/100000)
		ids[i] = id.MustNew(owner, host, benchTime)
	}
	return ids
}

func serverName(i int) string { return fmt.Sprintf("srv%d", i%servers) }

// plane abstracts the two directory data planes under test. Calls are
// in-process: the benchmark isolates the data-structure cost (lock
// contention, scan complexity), not the network round trip, which is
// identical for both designs.
type plane interface {
	register(directory.RegisterBody)
	lookup(nid id.NapletID) (directory.Entry, bool)
	drain(server string)
}

// singlePlane is the pre-shard directory store: one map, one global
// mutex, O(all-entries) deregistration — the seed design this PR replaced,
// preserved here as the measured baseline.
type singlePlane struct {
	mu      sync.Mutex
	entries map[string]directory.Entry
}

func newSinglePlane(n int) *singlePlane {
	return &singlePlane{entries: make(map[string]directory.Entry, n)}
}

func (p *singlePlane) register(body directory.RegisterBody) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := body.NapletID.Key()
	cur, ok := p.entries[key]
	if ok && body.At.Before(cur.At) {
		return
	}
	p.entries[key] = directory.Entry{
		NapletID: body.NapletID, Event: body.Event, Server: body.Server, At: body.At,
	}
}

func (p *singlePlane) lookup(nid id.NapletID) (directory.Entry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[nid.Key()]
	return e, ok
}

func (p *singlePlane) drain(server string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, e := range p.entries {
		if e.Server == server {
			delete(p.entries, key)
		}
	}
}

// nodePlane is one shard node of the sharded plane: the production
// striped Service with its by-server index. The caller feeds it exactly
// the traffic slice a real node receives.
type nodePlane struct {
	svc *directory.Service
}

func (p *nodePlane) register(body directory.RegisterBody) { p.svc.Register(body) }

func (p *nodePlane) lookup(nid id.NapletID) (directory.Entry, bool) { return p.svc.Lookup(nid) }

func (p *nodePlane) drain(server string) { p.svc.DeregisterServer(server) }

func populate(p plane, ids []id.NapletID) {
	for i, nid := range ids {
		p.register(directory.RegisterBody{
			NapletID: nid, Event: directory.Arrival, Server: serverName(i), At: benchTime,
		})
	}
}

// throughput measures both planes: the single-node baseline carries the
// whole space's traffic; one shard node carries its true share, and the
// sharded plane's aggregate is node rate x shards (divided by replicas
// for registers, which write through R times). Returns [lookup, register]
// results per plane, aggregate rows first for the sharded plane.
func throughput(ids []id.NapletID, shards, replicas int, window time.Duration, count int) (single, sharded []benchcheck.Result) {
	// Single node: all keys, all traffic, global mutex.
	sp := newSinglePlane(len(ids))
	populate(sp, ids)
	singleLookup := benchcheck.Result{Name: fmt.Sprintf("plane/single-node/lookup-%s", human(len(ids)))}
	singleRegister := benchcheck.Result{Name: fmt.Sprintf("plane/single-node/register-%s", human(len(ids)))}
	for s := 0; s < count; s++ {
		ls, rs := measure(sp, ids, ids, drainEvery, window, int64(s))
		singleLookup.Samples = append(singleLookup.Samples, ls)
		singleRegister.Samples = append(singleRegister.Samples, rs)
	}
	singleLookup.Median = benchcheck.Median(singleLookup.Samples, func(s benchcheck.Sample) float64 { return -s.OpsPerSec })
	singleRegister.Median = benchcheck.Median(singleRegister.Samples, func(s benchcheck.Sample) float64 { return -s.OpsPerSec })

	// One shard node's slice of the same space: it stores every key whose
	// replica group includes it, serves primary lookups for the keys it
	// leads, takes the write stream for its stored keys, and sees every
	// dock drain (drains broadcast) at the cadence its register share
	// implies.
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("dir%d", i)
	}
	ring := shard.NewRing(names)
	node := names[0]
	var owned, leads []id.NapletID
	var ownedServerIdx []int
	for i, nid := range ids {
		owners := ring.Owners(shard.KeyOf(nid), replicas)
		for oi, o := range owners {
			if o != node {
				continue
			}
			owned = append(owned, nid)
			ownedServerIdx = append(ownedServerIdx, i)
			if oi == 0 {
				leads = append(leads, nid)
			}
		}
	}
	np := &nodePlane{svc: directory.NewService()}
	for j, nid := range owned {
		np.register(directory.RegisterBody{
			NapletID: nid, Event: directory.Arrival, Server: serverName(ownedServerIdx[j]), At: benchTime,
		})
	}
	// The node's register stream is the global one scaled by R/N, so the
	// same global drain cadence arrives every drainEvery*R/N node-local
	// registers.
	nodeDrainEvery := drainEvery * replicas / shards
	if nodeDrainEvery < 1 {
		nodeDrainEvery = 1
	}
	planeName := fmt.Sprintf("sharded-%dx%d", shards, replicas)
	nodeLookup := benchcheck.Result{Name: fmt.Sprintf("plane/%s-per-node/lookup-%s", planeName, human(len(ids)))}
	nodeRegister := benchcheck.Result{Name: fmt.Sprintf("plane/%s-per-node/register-%s", planeName, human(len(ids)))}
	for s := 0; s < count; s++ {
		ls, rs := measure(np, leads, owned, nodeDrainEvery, window, int64(s))
		nodeLookup.Samples = append(nodeLookup.Samples, ls)
		nodeRegister.Samples = append(nodeRegister.Samples, rs)
	}
	nodeLookup.Median = benchcheck.Median(nodeLookup.Samples, func(s benchcheck.Sample) float64 { return -s.OpsPerSec })
	nodeRegister.Median = benchcheck.Median(nodeRegister.Samples, func(s benchcheck.Sample) float64 { return -s.OpsPerSec })

	aggLookup := scaleResult(nodeLookup,
		fmt.Sprintf("plane/%s-aggregate/lookup-%s", planeName, human(len(ids))), float64(shards))
	aggRegister := scaleResult(nodeRegister,
		fmt.Sprintf("plane/%s-aggregate/register-%s", planeName, human(len(ids))), float64(shards)/float64(replicas))

	return []benchcheck.Result{singleLookup, singleRegister},
		[]benchcheck.Result{aggLookup, aggRegister, nodeLookup, nodeRegister}
}

// scaleResult derives a plane-aggregate row from a per-node row: N nodes
// serve disjoint traffic concurrently, so aggregate ops/s multiplies;
// per-op latency (p99) is unchanged — each op still runs on one node.
func scaleResult(r benchcheck.Result, name string, factor float64) benchcheck.Result {
	out := benchcheck.Result{Name: name}
	for _, s := range r.Samples {
		s.OpsPerSec *= factor
		out.Samples = append(out.Samples, s)
	}
	m := r.Median
	m.OpsPerSec *= factor
	out.Median = m
	return out
}

// measure runs one sample window against p — readers looking up random
// keys from lookIDs, writers re-registering random keys from writeIDs,
// one dock drained every drainN registers — and returns (lookup,
// register) samples.
func measure(p plane, lookIDs, writeIDs []id.NapletID, drainN int, window time.Duration, seed int64) (benchcheck.Sample, benchcheck.Sample) {
	var (
		stop      atomic.Bool
		lookups   atomic.Int64
		registers atomic.Int64
		allocs0   runtime.MemStats
		wg        sync.WaitGroup
	)
	lat := make([][]int64, readers)
	runtime.GC()
	runtime.ReadMemStats(&allocs0)
	start := time.Now()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(r)))
			var n int64
			for !stop.Load() {
				nid := lookIDs[rng.Intn(len(lookIDs))]
				if n%p99Stride == 0 {
					t0 := time.Now()
					p.lookup(nid)
					lat[r] = append(lat[r], time.Since(t0).Nanoseconds())
				} else {
					p.lookup(nid)
				}
				n++
			}
			lookups.Add(n)
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*2000 + int64(w)))
			at := benchTime.Add(time.Duration(seed+1) * time.Hour)
			var n int64
			for !stop.Load() {
				i := rng.Intn(len(writeIDs))
				p.register(directory.RegisterBody{
					NapletID: writeIDs[i],
					Event:    directory.Arrival,
					Server:   serverName(rng.Intn(servers)),
					At:       at.Add(time.Duration(n) * time.Millisecond),
					Seq:      uint64(n),
				})
				n++
				if n%int64(drainN) == 0 {
					p.drain(serverName(rng.Intn(servers)))
				}
			}
			registers.Add(n)
		}(w)
	}

	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var allocs1 runtime.MemStats
	runtime.ReadMemStats(&allocs1)
	totalOps := lookups.Load() + registers.Load()
	var allocsPerOp, bytesPerOp int64
	if totalOps > 0 {
		allocsPerOp = int64(allocs1.Mallocs-allocs0.Mallocs) / totalOps
		bytesPerOp = int64(allocs1.TotalAlloc-allocs0.TotalAlloc) / totalOps
	}

	var all []int64
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var p99 int64
	if len(all) > 0 {
		p99 = all[len(all)*99/100]
	}

	mk := func(ops int64) benchcheck.Sample {
		s := benchcheck.Sample{
			OpsPerSec:   float64(ops) / elapsed.Seconds(),
			P99Ns:       float64(p99),
			AllocsPerOp: allocsPerOp,
			BytesPerOp:  bytesPerOp,
		}
		if ops > 0 {
			s.NsPerOp = elapsed.Seconds() * 1e9 * readers / float64(ops)
		}
		return s
	}
	return mk(lookups.Load()), mk(registers.Load())
}

func human(n int) string {
	if n%1_000_000 == 0 {
		return fmt.Sprintf("%dM", n/1_000_000)
	}
	if n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return fmt.Sprint(n)
}

// ---- Deterministic codec and routing benchmarks ----

func benchBody() directory.RegisterBody {
	return directory.RegisterBody{
		NapletID: id.MustNew("czxu", "sa", benchTime),
		Event:    directory.Departure,
		Server:   "srv7",
		Dest:     "srv9",
		At:       benchTime,
		Seq:      11,
	}
}

func benchRegisterEncodeBinary(b *testing.B) {
	body := benchBody()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		body.AppendBinary(make([]byte, 0, body.EncodedSize()))
	}
}

func benchRegisterDecodeBinary(b *testing.B) {
	body := benchBody()
	buf := body.AppendBinary(make([]byte, 0, body.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec directory.RegisterBody
		if err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReplyRoundTripBinary(b *testing.B) {
	rep := directory.ReplyBody{Found: true, Entry: directory.Entry{
		NapletID: id.MustNew("czxu", "sa", benchTime), Server: "srv3", At: benchTime, Seq: 5,
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := rep.AppendBinary(make([]byte, 0, rep.EncodedSize()))
		var dec directory.ReplyBody
		if err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRegisterRoundTripGob(b *testing.B) {
	body := benchBody()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := wire.Marshal(&body)
		if err != nil {
			b.Fatal(err)
		}
		var dec directory.RegisterBody
		if err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRingOwners(b *testing.B) {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("dir%d", i)
	}
	ring := shard.NewRing(names)
	key := shard.KeyOf(id.MustNew("czxu", "sa", benchTime))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Owners(key, 2)
	}
}
