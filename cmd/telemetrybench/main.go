// Command telemetrybench benchmarks the telemetry hot paths and writes
// BENCH_telemetry.json in the same schema as BENCH_wire.json (see
// cmd/wirebench), so successive PRs can watch the instrumentation
// overhead trajectory.
//
// Beyond recording samples it enforces the subsystem's cost contract:
//
//   - a counter increment stays ≤ 25 ns/op with 0 allocs/op, and a
//     histogram observation allocates nothing;
//   - the instrumented TCP frame round trip stays within 5% of the
//     uninstrumented fabric/tcp-roundtrip median recorded in
//     BENCH_wire.json (pass -baseline "" to skip the comparison).
//
// Violations exit non-zero so `make bench-telemetry` fails loudly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

type sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type result struct {
	Name    string   `json:"name"`
	Samples []sample `json:"samples"`
	Median  sample   `json:"median"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Count       int      `json:"count"`
	Results     []result `json:"results"`
}

// Cost-contract limits.
const (
	maxCounterNsPerOp    = 25.0
	maxRoundTripOverhead = 0.05 // vs the BENCH_wire.json baseline
)

func main() {
	count := flag.Int("count", 5, "samples per benchmark")
	out := flag.String("o", "BENCH_telemetry.json", "output JSON path")
	baseline := flag.String("baseline", "BENCH_wire.json", "wire benchmark baseline to compare the instrumented round trip against (empty = skip)")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"telemetry/counter-inc", benchCounterInc},
		{"telemetry/histogram-observe", benchHistogramObserve},
		{"telemetry/hop-record", benchHopRecord},
		{"telemetry/scrape", benchScrape},
		{"fabric/tcp-roundtrip-instrumented", benchTCPRoundTripInstrumented},
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Count:       *count,
	}
	medians := make(map[string]sample)
	for _, bm := range benches {
		res := result{Name: bm.name}
		for i := 0; i < *count; i++ {
			r := testing.Benchmark(bm.fn)
			res.Samples = append(res.Samples, sample{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
		res.Median = median(res.Samples)
		medians[bm.name] = res.Median
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-36s %12.1f ns/op %8d B/op %6d allocs/op  (median of %d)\n",
			bm.name, res.Median.NsPerOp, res.Median.BytesPerOp, res.Median.AllocsPerOp, *count)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	ok := true
	if m := medians["telemetry/counter-inc"]; m.NsPerOp > maxCounterNsPerOp || m.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "telemetrybench: counter increment %.1f ns/op, %d allocs/op exceeds contract (≤%.0f ns/op, 0 allocs)\n",
			m.NsPerOp, m.AllocsPerOp, maxCounterNsPerOp)
		ok = false
	}
	if m := medians["telemetry/histogram-observe"]; m.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "telemetrybench: histogram observe allocates (%d allocs/op); hot path must be alloc-free\n", m.AllocsPerOp)
		ok = false
	}
	if *baseline != "" {
		if err := checkRoundTrip(*baseline, medians["fabric/tcp-roundtrip-instrumented"]); err != nil {
			fmt.Fprintln(os.Stderr, "telemetrybench:", err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// checkRoundTrip compares the instrumented round trip against the
// uninstrumented fabric/tcp-roundtrip median from the wire baseline.
func checkRoundTrip(path string, instrumented sample) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	for _, r := range base.Results {
		if r.Name != "fabric/tcp-roundtrip" {
			continue
		}
		limit := r.Median.NsPerOp * (1 + maxRoundTripOverhead)
		fmt.Printf("round-trip overhead: %.1f ns/op instrumented vs %.1f baseline (limit %.1f)\n",
			instrumented.NsPerOp, r.Median.NsPerOp, limit)
		if instrumented.NsPerOp > limit {
			return fmt.Errorf("instrumented round trip %.1f ns/op exceeds %.0f%% over baseline %.1f ns/op",
				instrumented.NsPerOp, 100*maxRoundTripOverhead, r.Median.NsPerOp)
		}
		return nil
	}
	return fmt.Errorf("baseline %s has no fabric/tcp-roundtrip result", path)
}

func median(s []sample) sample {
	sorted := append([]sample(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerOp < sorted[j].NsPerOp })
	return sorted[len(sorted)/2]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "telemetrybench:", err)
	os.Exit(1)
}

func benchCounterInc(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func benchHistogramObserve(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_hist_seconds", "bench", telemetry.LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func benchHopRecord(b *testing.B) {
	tr := telemetry.NewHopTracer(1024)
	span := telemetry.HopSpan{
		Naplet:  "bench@host:000000000000",
		From:    "a",
		To:      "b",
		Total:   3 * time.Millisecond,
		Outcome: telemetry.OutcomeOK,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span.Hop = i
		tr.Record(span)
	}
}

// benchScrape renders a registry with a realistic series population, the
// cost a /metrics poll puts on the daemon.
func benchScrape(b *testing.B) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 30; i++ {
		reg.Counter(fmt.Sprintf("bench_scrape_c%d_total", i), "bench").Add(int64(i))
	}
	for i := 0; i < 5; i++ {
		h := reg.Histogram(fmt.Sprintf("bench_scrape_h%d_seconds", i), "bench", telemetry.LatencyBuckets)
		for j := 0; j < 100; j++ {
			h.Observe(float64(j) * 1e-5)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// benchTCPRoundTripInstrumented mirrors wirebench's fabric/tcp-roundtrip
// with the fabric instrumented, so the two medians isolate the metering
// overhead on the frame path.
func benchTCPRoundTripInstrumented(b *testing.B) {
	fabric := transport.NewTCPFabric()
	fabric.Instrument(telemetry.NewRegistry())
	srv, err := fabric.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.NewFrame(wire.KindPostConfirm, f.To, f.From, &struct{ OK bool }{true})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := fabric.Attach("127.0.0.1:0", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &struct{ N int }{7})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, srv.Addr(), req); err != nil {
			b.Fatal(err)
		}
	}
}
