// Command migrationbench benchmarks the migration hot path: record and
// mail serialization under both codecs (the gob baseline lives in the same
// report, so the binary codec's win is measured, not asserted), and full
// naplet hops — landing negotiation, transfer, ack — over real TCP and
// over a simulated WAN. Results land in BENCH_migration.json via `make
// bench-migration`.
//
// With -check <file>, the deterministic codec benchmarks are re-run and
// compared against the committed baseline: a >10% regression in allocs/op
// fails the run (allocation counts are deterministic, so the check is
// noise-free; ns/op is reported but not gated).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/benchcheck"
	"repro/internal/cred"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/manager"
	"repro/internal/naplet"
	"repro/internal/navigator"
	"repro/internal/netsim"
	"repro/internal/registry"
	"repro/internal/state"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	count := flag.Int("count", 5, "samples per benchmark")
	out := flag.String("o", "BENCH_migration.json", "output JSON path")
	check := flag.String("check", "", "baseline JSON to regression-check against (codec benches only)")
	flag.Parse()

	benches := []benchcheck.Bench{
		{Name: "codec/record-encode-binary", Fn: benchRecordEncodeBinary, Deterministic: true},
		{Name: "codec/record-decode-binary", Fn: benchRecordDecodeBinary, Deterministic: true},
		{Name: "codec/record-encode-gob", Fn: benchRecordEncodeGob, Deterministic: true},
		{Name: "codec/record-decode-gob", Fn: benchRecordDecodeGob, Deterministic: true},
		{Name: "codec/mail-roundtrip-binary", Fn: benchMailRoundTripBinary, Deterministic: true},
		{Name: "codec/mail-roundtrip-gob", Fn: benchMailRoundTripGob, Deterministic: true},
		{Name: "hop/netsim-wan", Fn: benchHopNetsimWAN},
		{Name: "hop/tcp", Fn: benchHopTCP},
	}
	if *check != "" {
		if err := benchcheck.Check("migrationbench", *check, benches, *count); err != nil {
			fatal(err)
		}
		fmt.Println("migrationbench: regression check passed")
		return
	}

	rep := benchcheck.NewReport(*count)
	for _, bm := range benches {
		res := benchcheck.Run(bm, *count)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op  (median of %d)\n",
			bm.Name, res.Median.NsPerOp, res.Median.BytesPerOp, res.Median.AllocsPerOp, *count)
	}

	if err := benchcheck.WriteFile(*out, &rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "migrationbench:", err)
	os.Exit(1)
}

// benchTime is fixed so record contents are identical across runs.
var benchTime = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// benchRecord builds a representative migrating naplet: a toured ID with
// heritage, signed-credential-shaped bytes, a few state keys, a partially
// consumed itinerary, a populated address book, and a multi-hop nav log.
func benchRecord() *naplet.Record {
	nid, err := id.MustNew("czxu", "sa", benchTime).Clone(2)
	if err != nil {
		fatal(err)
	}
	st := state.New()
	if err := st.SetPublic("best-price", 42); err != nil {
		fatal(err)
	}
	if err := st.SetPrivate("tour", []string{"sa", "sb", "sc"}); err != nil {
		fatal(err)
	}
	book := naplet.NewAddressBook()
	book.Add(id.MustNew("czxu", "sa", benchTime), "naplet://sa:4100")
	book.Add(id.MustNew("amgr", "sb", benchTime), "naplet://sb:4100")
	log := naplet.NewNavigationLog()
	for i, s := range []string{"sa:1", "sb:2", "sc:3"} {
		at := benchTime.Add(time.Duration(i) * time.Minute)
		log.RecordArrival(s, at)
		if i < 2 {
			log.RecordDeparture(s, at.Add(30*time.Second))
		}
	}
	return &naplet.Record{
		ID: nid,
		Credential: cred.Credential{
			NapletID:  nid,
			Codebase:  "bench.Agent",
			Roles:     []string{"guest"},
			IssuedAt:  benchTime,
			Signature: make([]byte, 32),
		},
		Codebase: "bench.Agent",
		Home:     "sa:1",
		State:    st,
		Itin: &itinerary.Itinerary{
			Remaining: itinerary.SeqVisits([]string{"sd", "se"}, "collect"),
		},
		Book:     book,
		Log:      log,
		Pending:  itinerary.Visit{Server: "sd", Action: "collect"},
		Failover: naplet.FailoverSkip,
		CloneSeq: 2,
	}
}

func benchMail() naplet.Message {
	return naplet.Message{
		ID:      "sa/m-17",
		From:    id.MustNew("czxu", "sa", benchTime),
		To:      id.MustNew("amgr", "sb", benchTime),
		Class:   naplet.UserMessage,
		Subject: "price-quote",
		Body:    make([]byte, 256),
		SentAt:  benchTime,
	}
}

func benchRecordEncodeBinary(b *testing.B) {
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := navigator.EncodeRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRecordDecodeBinary(b *testing.B) {
	data, err := navigator.EncodeRecord(benchRecord())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := navigator.DecodeRecord(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRecordEncodeGob(b *testing.B) {
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Marshal(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRecordDecodeGob(b *testing.B) {
	data, err := wire.Marshal(benchRecord())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := navigator.DecodeRecord(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMailRoundTripBinary(b *testing.B) {
	msg := benchMail()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := msg.AppendBinary(make([]byte, 0, msg.EncodedSize()))
		if _, _, err := naplet.DecodeMessageBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMailRoundTripGob(b *testing.B) {
	msg := benchMail()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := wire.Marshal(&msg)
		if err != nil {
			b.Fatal(err)
		}
		var dec naplet.Message
		if err := wire.Unmarshal(enc, &dec); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Full hops ----

type hopNode struct {
	nav    *navigator.Navigator
	mgr    *manager.Manager
	landed chan *naplet.Record
}

func attachHopNode(fab transport.Fabric, addr string, reg *registry.Registry) (*hopNode, string, error) {
	n := &hopNode{
		landed: make(chan *naplet.Record, 1),
	}
	tnode, err := fab.Attach(addr, func(from string, f wire.Frame) (wire.Frame, error) {
		switch f.Kind {
		case wire.KindLandingRequest:
			return n.nav.HandleLandingRequest(from, f)
		case wire.KindNapletTransfer:
			return n.nav.HandleTransfer(from, f)
		case wire.KindCodeFetch:
			return n.nav.HandleCodeFetch(from, f)
		case wire.KindHomeEvent:
			return n.nav.HandleHomeEvent(from, f)
		default:
			return wire.Frame{}, fmt.Errorf("unexpected kind %s", f.Kind)
		}
	})
	if err != nil {
		return nil, "", err
	}
	name := tnode.Addr()
	n.mgr = manager.New(name, func() time.Time { return time.Now() })
	n.nav = navigator.New(navigator.Config{CodeDelivery: navigator.Push},
		name, tnode, nil, n.mgr, reg, registry.NewCache(), nil)
	n.nav.SetLandFunc(func(rec *naplet.Record, source string) { n.landed <- rec })
	return n, name, nil
}

type benchAgent struct{}

func (benchAgent) OnStart(ctx *naplet.Context) error { return nil }

// benchHop ping-pongs one naplet between two servers; each iteration is a
// complete migration: landing request/grant, record transfer, ack, and
// directory bookkeeping. Code moves only on the first hop (warm caches
// after that, like a real tour).
func benchHop(b *testing.B, fab transport.Fabric, addrA, addrB string) {
	reg := registry.New()
	reg.MustRegister(&registry.Codebase{
		Name:       "bench.Agent",
		New:        func() naplet.Behavior { return benchAgent{} },
		BundleSize: 32 << 10,
	})
	na, nameA, err := attachHopNode(fab, addrA, reg)
	if err != nil {
		b.Fatal(err)
	}
	nb, nameB, err := attachHopNode(fab, addrB, reg)
	if err != nil {
		b.Fatal(err)
	}
	rec := benchRecord()
	rec.Home = nameA
	ctx := context.Background()

	hop := func(from, to *hopNode, dest string, r *naplet.Record) *naplet.Record {
		from.mgr.RecordArrival(r.ID, r.Codebase, "bench", time.Now())
		if _, err := from.nav.Dispatch(ctx, r, dest); err != nil {
			b.Fatal(err)
		}
		return <-to.landed
	}

	// Warm-up hops: load the code cache at both ends so the measured loop
	// is steady state, the way a mid-tour hop is.
	rec = hop(na, nb, nameB, rec)
	rec = hop(nb, na, nameA, rec)

	nodes := [2]*hopNode{na, nb}
	names := [2]string{nameA, nameB}
	cur := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := 1 - cur
		rec = hop(nodes[cur], nodes[next], names[next], rec)
		cur = next
		// Keep the record a fixed size: without this the nav log grows an
		// entry per hop and the measurement drifts upward with b.N.
		rec.Log = naplet.NewNavigationLog()
		rec.Log.RecordArrival(names[cur], time.Now())
	}
}

func benchHopTCP(b *testing.B) {
	benchHop(b, transport.NewTCPFabric(), "127.0.0.1:0", "127.0.0.1:0")
}

// benchHopNetsimWAN hops over the simulated WAN in pure-accounting mode
// (TimeScale 0: modeled delay is tallied, not slept), so ns/op is the
// per-hop processing cost under WAN framing rather than 20ms of sleep.
func benchHopNetsimWAN(b *testing.B) {
	net := netsim.New(netsim.Config{DefaultLink: netsim.WAN})
	benchHop(b, net, "sa", "sb")
}
