// Fleet subcommands: napletctl talks to a napletmaster over the same
// wire protocol the docks use, listing the node table, running launch
// waves, and tailing the live event stream.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

func fleetCmd(node transport.Node, master string, args []string) {
	if len(args) < 1 {
		fleetUsage()
	}
	switch args[0] {
	case "nodes":
		fleetNodes(node, master)
	case "wave":
		fleetWave(node, master, args[1:])
	case "watch":
		fleetWatch(node, master, args[1:])
	default:
		fleetUsage()
	}
}

func fleetUsage() {
	fmt.Fprintln(os.Stderr, "usage: napletctl -master <addr> fleet nodes")
	fmt.Fprintln(os.Stderr, "       napletctl -master <addr> fleet wave -codebase <name> -routes \"r1;r2\" [-count n] [flags]")
	fmt.Fprintln(os.Stderr, "       napletctl -master <addr> fleet watch [-buf n]")
	os.Exit(2)
}

// fleetNodes prints the master's node table.
func fleetNodes(node transport.Node, master string) {
	f, err := wire.NewFrame(wire.KindFleetNodes, "", master, fleet.NodesBody{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := node.Call(ctx, master, f)
	if err != nil {
		log.Fatalf("napletctl fleet nodes: %v", err)
	}
	var rb fleet.NodesReplyBody
	if err := reply.Body(&rb); err != nil {
		log.Fatal(err)
	}
	if len(rb.Nodes) == 0 {
		fmt.Println("no nodes registered")
		return
	}
	tbl := stats.NewTable("node", "state", "residents", "disk", "ingest B/s", "flags", "last seen")
	for _, n := range rb.Nodes {
		var flags []string
		if n.Draining {
			flags = append(flags, "draining")
		}
		if n.Over {
			flags = append(flags, "over-watermark")
		}
		flags = append(flags, n.Labels...)
		tbl.AddRow(n.Name, n.State, n.Residents, n.DiskUsedBytes,
			fmt.Sprintf("%.0f", n.IngestRate), strings.Join(flags, ","),
			n.LastSeen.Format(time.RFC3339))
	}
	fmt.Print(tbl.String())
}

// fleetWave submits a launch wave and prints the aggregated result.
func fleetWave(node transport.Node, master string, args []string) {
	fs := flag.NewFlagSet("wave", flag.ExitOnError)
	name := fs.String("name", "wave", "wave label in results and logs")
	codebase := fs.String("codebase", "", "registered codebase name")
	routes := fs.String("routes", "", `semicolon-separated itineraries, e.g. "seq(a,b);seq(b,c)"`)
	count := fs.Int("count", 1, "naplets launched per route")
	owner := fs.String("owner", "fleet", "launching principal")
	params := fs.String("params", "", "semicolon-separated agent parameters")
	failover := fs.String("failover", "skip", "dead-destination policy: none | skip | alternates | home")
	perNodeCap := fs.Int("per-node-cap", 4, "concurrently running launches per node")
	retries := fs.Int("retries", 3, "reschedule budget per launch")
	timeout := fs.Duration("timeout", 5*time.Minute, "whole-wave deadline")
	fs.Parse(args)
	if *codebase == "" || *routes == "" {
		log.Fatal("napletctl fleet wave: -codebase and -routes are required")
	}

	spec := fleet.WaveSpec{
		Name:       *name,
		Count:      *count,
		Owner:      *owner,
		Codebase:   *codebase,
		Failover:   *failover,
		PerNodeCap: *perNodeCap,
		Retries:    *retries,
		Timeout:    *timeout,
	}
	for _, r := range strings.Split(*routes, ";") {
		if r = strings.TrimSpace(r); r != "" {
			spec.Routes = append(spec.Routes, r)
		}
	}
	if *params != "" {
		spec.Params = strings.Split(*params, ";")
	}

	f, err := wire.NewFrame(wire.KindFleetWave, "", master, fleet.WaveBody{Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	// The call outlives the wave deadline by a margin so the master's
	// deadline fires first and the partial result still comes back.
	ctx, cancel := context.WithTimeout(context.Background(), *timeout+10*time.Second)
	defer cancel()
	reply, err := node.Call(ctx, master, f)
	if err != nil {
		log.Fatalf("napletctl fleet wave: %v", err)
	}
	var rb fleet.WaveReplyBody
	if err := reply.Body(&rb); err != nil {
		log.Fatal(err)
	}
	if rb.Result != nil {
		printWave(rb.Result)
	}
	if !rb.OK {
		log.Fatalf("napletctl fleet wave: %s", rb.Err)
	}
}

func printWave(res *fleet.WaveResult) {
	fmt.Printf("wave %s: completed %d/%d (failed %d, rescheduled %d) in %s\n",
		res.Name, res.Completed, res.Total, res.Failed, res.Rescheduled,
		res.Elapsed.Round(time.Millisecond))
	for n, c := range res.PerNode {
		fmt.Printf("  %s: %d completed\n", n, c)
	}
	for _, l := range res.Launches {
		line := fmt.Sprintf("launch %d [%s] at %s: %s", l.Index, l.Route, l.Node, l.Status)
		if l.Attempts > 1 {
			line += fmt.Sprintf(" (%d attempts)", l.Attempts)
		}
		if l.Result != "" {
			line += " — " + l.Result
		}
		if l.Err != "" {
			line += " — " + l.Err
		}
		fmt.Println(line)
	}
}

// fleetWatch subscribes to the master's event stream and tails it until
// the subscription closes (reaped, or dropped as too slow).
func fleetWatch(node transport.Node, master string, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	buf := fs.Int("buf", 1024, "subscriber ring capacity at the master")
	poll := fs.Duration("poll", 250*time.Millisecond, "polling cadence")
	fs.Parse(args)

	subscribe := func(body *fleet.SubscribeBody) fleet.SubscribeReplyBody {
		f := wire.BinaryFrame(wire.KindFleetSubscribe, "", master, body)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		reply, err := node.Call(ctx, master, f)
		if err != nil {
			log.Fatalf("napletctl fleet watch: %v", err)
		}
		var rb fleet.SubscribeReplyBody
		if err := rb.Decode(reply.Payload); err != nil {
			log.Fatal(err)
		}
		return rb
	}

	sub := subscribe(&fleet.SubscribeBody{Buf: uint32(*buf)})
	fmt.Fprintf(os.Stderr, "watching fleet events (subscription %s; ^C to stop)\n", sub.ID)
	// Dropped is cumulative per subscription; report only the delta so
	// one down-sampled burst is not re-announced on every poll.
	var lastDropped uint64
	for {
		rb := subscribe(&fleet.SubscribeBody{ID: sub.ID})
		if rb.Dropped > lastDropped {
			fmt.Fprintf(os.Stderr, "… %d events dropped (slow consumer)\n", rb.Dropped-lastDropped)
		}
		lastDropped = rb.Dropped
		for _, ev := range rb.Events {
			printEvent(ev)
		}
		if rb.Closed {
			log.Fatalf("napletctl fleet watch: subscription closed: %s", rb.Err)
		}
		if rb.Err != "" {
			log.Fatalf("napletctl fleet watch: %s", rb.Err)
		}
		time.Sleep(*poll)
	}
}

func printEvent(ev fleet.Event) {
	line := fmt.Sprintf("%s  #%d %-10s %s  naplet=%s hop=%d",
		ev.At.Format("15:04:05.000"), ev.Seq, ev.Kind, ev.Node, ev.Naplet, ev.Hop)
	if ev.From != "" || ev.To != "" {
		line += fmt.Sprintf("  %s -> %s", ev.From, ev.To)
	}
	if ev.Outcome != "" {
		line += "  " + ev.Outcome
	}
	if ev.Bytes > 0 {
		line += fmt.Sprintf("  %dB", ev.Bytes)
	}
	if ev.Elapsed > 0 {
		line += "  " + ev.Elapsed.Round(time.Microsecond).String()
	}
	if ev.Detail != "" {
		line += "  (" + ev.Detail + ")"
	}
	fmt.Println(line)
}
