package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// overloadFamilies are the series the overload subcommand surfaces: the
// admission gate's books, the breaker lattice, the retry budgets, and
// the transport-level shed counters.
var overloadFamilies = []string{
	"naplet_overload_admitted_total",
	"naplet_overload_shed_total",
	"naplet_overload_inflight",
	"naplet_overload_queued",
	"naplet_breaker_open_total",
	"naplet_breaker_rejected_total",
	"naplet_breaker_peers",
	"naplet_retry_budget_exhausted_total",
	"naplet_retry_budget_tokens",
	"naplet_transport_deadline_shed_total",
	"naplet_transport_late_replies_total",
}

// overloadCmd fetches a napletd telemetry endpoint and pretty-prints its
// overload posture: what the admission gate admitted and shed (by class
// and reason), breaker state and open transitions, retry-budget
// exhaustion, and the transport's deadline sheds and late replies — the
// one-stop view of "is this dock shedding, and is every shed accounted".
func overloadCmd(addr string) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		log.Fatalf("napletctl overload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("napletctl overload: %s returned %s", addr, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("napletctl overload: read: %v", err)
	}

	samples := parsePrometheus(string(body))
	wanted := make(map[string]bool, len(overloadFamilies))
	for _, f := range overloadFamilies {
		wanted[f] = true
	}
	var rows []sample
	var admitted, shed float64
	for _, s := range samples {
		if !wanted[s.family] {
			continue
		}
		rows = append(rows, s)
		switch s.family {
		case "naplet_overload_admitted_total":
			admitted += s.value
		case "naplet_overload_shed_total":
			shed += s.value
		}
	}
	if len(rows) == 0 {
		fmt.Println("no overload series — this napletd runs without -overload (or has served no traffic)")
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	tbl := stats.NewTable("overload", "value")
	for _, s := range rows {
		tbl.AddRow(strings.TrimPrefix(s.name, "naplet_"), formatMetric(s.value))
	}
	fmt.Print(tbl.String())
	if total := admitted + shed; total > 0 {
		fmt.Printf("\nshed ratio: %.2f%% of %s arrivals\n", 100*shed/total, formatMetric(total))
	}
}
