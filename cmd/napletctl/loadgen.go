package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/loadgen"
)

// loadgenCmd drives sustained mixed traffic against a freshly built
// in-process testbed and judges the run against its SLOs. It is fully
// self-contained (no napletd needed): the fabric, device fleet and
// stations are constructed per run, so the same command gates CI and
// reproduces CI failures locally via -loadgen.seed.
func loadgenCmd(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	profile := fs.String("profile", "short", "traffic profile: "+profileNames())
	fabric := fs.String("fabric", "", "fabric: netsim-lan, netsim-wan, tcp or both (default both; netsim-wan with -check)")
	devices := fs.Int("devices", 0, "override the profile's device count")
	seed := fs.Int64("loadgen.seed", 1, "seed for the deterministic plan (replay a CI failure by its printed seed)")
	faults := fs.Bool("faults", false, "enable seeded fault injection (netsim fabrics only)")
	check := fs.String("check", "", "compare a run against this baseline JSON and exit non-zero on regression")
	out := fs.String("o", "", "write the run's baseline JSON here (trajectory record)")
	extra := fs.String("extra", "", "comma-separated profile:fabric runs to record alongside the main one (with -o); replayed by -check")
	fs.Parse(args)

	prof, ok := loadgen.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "napletctl loadgen: unknown profile %q (have %s)\n", *profile, profileNames())
		os.Exit(2)
	}
	if *devices > 0 {
		prof.Devices = *devices
	}

	if *check != "" {
		base, err := loadgen.ReadBaseline(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napletctl loadgen: %v\n", err)
			os.Exit(1)
		}
		// The gate replays the baseline's own recorded configuration so
		// the comparison is like-for-like; explicit flags still override.
		cfg := loadgen.Config{Profile: prof, Fabric: base.Fabric, Seed: base.Seed, Out: os.Stdout}
		if bp, ok := loadgen.Profiles[base.Profile]; ok && *profile == "short" && base.Profile != "short" {
			cfg.Profile = bp
		}
		if *fabric != "" {
			cfg.Fabric = *fabric
		}
		res, err := loadgen.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "napletctl loadgen: %v\n", err)
			os.Exit(1)
		}
		fails := base.Check(res)
		// Replay the recorded extra runs (the overload scenario chiefly):
		// each judges itself through its own Violations.
		for _, e := range base.Extra {
			eprof, ok := loadgen.Profiles[e.Profile]
			if !ok {
				fails = append(fails, fmt.Sprintf("extra run names unknown profile %q", e.Profile))
				continue
			}
			fmt.Println()
			eres, err := loadgen.Run(context.Background(), loadgen.Config{
				Profile: eprof, Fabric: e.Fabric, Seed: e.Seed, Out: os.Stdout,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "napletctl loadgen: extra %s/%s: %v\n", e.Profile, e.Fabric, err)
				os.Exit(1)
			}
			fails = append(fails, e.Check(eres)...)
		}
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "napletctl loadgen: %d regressions vs %s:\n", len(fails), *check)
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "  - %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("loadgen check vs %s: ok\n", *check)
		return
	}

	fabrics := []string{loadgen.FabricNetsimWAN, loadgen.FabricTCP}
	switch *fabric {
	case "", "both":
		if *faults {
			// Scripted faults need the simulator's stable names.
			fabrics = []string{loadgen.FabricNetsimWAN}
		}
	default:
		fabrics = []string{*fabric}
	}

	failed := false
	var last *loadgen.Result
	for i, fb := range fabrics {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Profile: prof,
			Fabric:  fb,
			Seed:    *seed,
			Faults:  *faults,
			Out:     os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "napletctl loadgen: %s: %v (after %s)\n", fb, err, time.Since(start).Round(time.Millisecond))
			os.Exit(1)
		}
		if len(res.Violations) > 0 {
			failed = true
		}
		last = res
	}
	if *out != "" && last != nil {
		base := loadgen.NewBaseline(last)
		for _, spec := range strings.Split(*extra, ",") {
			if spec == "" {
				continue
			}
			pname, fb, ok := strings.Cut(spec, ":")
			eprof, have := loadgen.Profiles[pname]
			if !ok || !have {
				fmt.Fprintf(os.Stderr, "napletctl loadgen: -extra wants profile:fabric with a known profile, got %q\n", spec)
				os.Exit(2)
			}
			fmt.Println()
			eres, err := loadgen.Run(context.Background(), loadgen.Config{
				Profile: eprof, Fabric: fb, Seed: *seed, Out: os.Stdout,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "napletctl loadgen: extra %s: %v\n", spec, err)
				os.Exit(1)
			}
			if len(eres.Violations) > 0 {
				failed = true
			}
			base.Extra = append(base.Extra, loadgen.NewExtra(eres))
		}
		if err := loadgen.WriteBaseline(*out, base); err != nil {
			fmt.Fprintf(os.Stderr, "napletctl loadgen: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

func profileNames() string {
	names := make([]string, 0, len(loadgen.Profiles))
	for n := range loadgen.Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
