// Command napletctl manages naplets in a running naplet space from the
// command line: it launches agents on itineraries written in the paper's
// operator notation, queries their status, fetches their reports, and
// casts control messages (callback / suspend / resume / terminate).
//
// Usage:
//
//	napletctl -home <addr> launch -codebase <name> -route "seq(a,b)" [-owner u] [-params p1;p2] [-wait]
//	napletctl -home <addr> status  -id <naplet-id>
//	napletctl -home <addr> results -id <naplet-id>
//	napletctl -home <addr> control -id <naplet-id> -verb terminate
//	napletctl -master <addr> fleet {nodes|wave|watch} [flags]
//	napletctl metrics <metrics-addr>[,<metrics-addr>...]
//	napletctl overload <metrics-addr>
//	napletctl spans <metrics-addr> [naplet-id]
//
// The home address is the napletd that launched (or will launch) the
// naplet. The metrics and spans subcommands talk to a napletd's telemetry
// endpoint (its -metrics-addr) instead of the naplet protocol port.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/id"
	"repro/internal/locator"
	"repro/internal/man"
	"repro/internal/naplet"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	home := flag.String("home", "127.0.0.1:7001", "home naplet server address")
	master := flag.String("master", "127.0.0.1:7100", "napletmaster address (fleet subcommands)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	// The metrics and spans subcommands are pure HTTP; they need no
	// fabric node.
	if cmd == "metrics" {
		if len(rest) != 1 {
			fmt.Fprintln(os.Stderr, "usage: napletctl metrics <metrics-addr>[,<metrics-addr>...]")
			os.Exit(2)
		}
		metrics(rest[0])
		return
	}
	if cmd == "overload" {
		if len(rest) != 1 {
			fmt.Fprintln(os.Stderr, "usage: napletctl overload <metrics-addr>")
			os.Exit(2)
		}
		overloadCmd(rest[0])
		return
	}
	if cmd == "spans" {
		if len(rest) < 1 || len(rest) > 2 {
			fmt.Fprintln(os.Stderr, "usage: napletctl spans <metrics-addr> [naplet-id]")
			os.Exit(2)
		}
		nid := ""
		if len(rest) == 2 {
			nid = rest[1]
		}
		spans(rest[0], nid)
		return
	}

	// loadgen builds its own fabric and testbed per run.
	if cmd == "loadgen" {
		loadgenCmd(rest)
		return
	}

	fabric := transport.NewTCPFabric()
	node, err := fabric.Attach("127.0.0.1:0", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, fmt.Errorf("napletctl serves no requests")
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	switch cmd {
	case "launch":
		launch(node, *home, rest)
	case "status":
		simpleOp(node, *home, "status", rest)
	case "results":
		simpleOp(node, *home, "results", rest)
	case "control":
		control(node, *home, rest)
	case "locate":
		locate(node, *home, rest)
	case "footprints":
		footprints(node, *home)
	case "fleet":
		fleetCmd(node, *master, rest)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: napletctl -home <addr> {launch|status|results|control|locate|footprints} [flags]")
	fmt.Fprintln(os.Stderr, "       napletctl -master <addr> fleet {nodes|wave|watch} [flags]")
	fmt.Fprintln(os.Stderr, "       napletctl metrics <metrics-addr>[,<metrics-addr>...]")
	fmt.Fprintln(os.Stderr, "       napletctl overload <metrics-addr>")
	fmt.Fprintln(os.Stderr, "       napletctl spans <metrics-addr> [naplet-id]")
	fmt.Fprintln(os.Stderr, "       napletctl loadgen [-profile short|mixed|man-sweep|overload] [-fabric netsim-wan|tcp|both] [-loadgen.seed N] [-faults] [-check BENCH_loadgen.json] [-o file] [-extra profile:fabric]")
	os.Exit(2)
}

// sample is one parsed Prometheus text-format line.
type sample struct {
	name   string // series name including labels, e.g. `foo{kind="post"}`
	family string // bare metric name
	value  float64
}

// metrics accepts one telemetry address or a comma-separated list. A
// single address keeps the classic single-node output; a list fetches
// every node and prints the same tables prefixed per node, so one
// invocation surveys a whole fleet.
func metrics(addrList string) {
	var addrs []string
	for _, a := range strings.Split(addrList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("napletctl metrics: no address given")
	}
	if len(addrs) == 1 {
		metricsOne(addrs[0], "")
		return
	}
	for _, a := range addrs {
		metricsOne(a, a+" ")
	}
}

// metricsOne fetches a napletd telemetry endpoint and pretty-prints the
// naplet-relevant families, grouped by component, with a few derived
// figures (cache hit ratio, mean latencies). A non-empty prefix tags
// every table title and derived line with the node it came from.
func metricsOne(addr, prefix string) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		log.Fatalf("napletctl metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("napletctl metrics: %s returned %s", addr, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("napletctl metrics: read: %v", err)
	}

	samples := parsePrometheus(string(body))
	byComponent := make(map[string][]sample)
	values := make(map[string]float64)
	for _, s := range samples {
		values[s.name] = s.value
		if !strings.HasPrefix(s.family, "naplet_") {
			continue
		}
		// Histogram buckets would swamp the table; keep _sum/_count so
		// means stay derivable.
		if strings.HasSuffix(s.family, "_bucket") {
			continue
		}
		parts := strings.SplitN(s.family, "_", 3)
		if len(parts) < 3 {
			continue
		}
		byComponent[parts[1]] = append(byComponent[parts[1]], s)
	}

	components := make([]string, 0, len(byComponent))
	for c := range byComponent {
		components = append(components, c)
	}
	sort.Strings(components)
	for _, c := range components {
		rows := byComponent[c]
		sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
		tbl := stats.NewTable(prefix+c, "value")
		for _, s := range rows {
			tbl.AddRow(strings.TrimPrefix(s.name, "naplet_"+c+"_"), formatMetric(s.value))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}

	// Derived figures the raw families only imply.
	if lookups := values["naplet_locator_lookups_total"]; lookups > 0 {
		hits := values["naplet_locator_cache_hits_total"]
		fmt.Printf("%slocator cache hit ratio: %.1f%%\n", prefix, 100*hits/lookups)
	}
	printMean(values, "naplet_messenger_confirm_rtt_seconds", prefix+"mean confirm RTT")
	printMean(values, "naplet_navigator_hop_latency_seconds", prefix+"mean hop latency")
}

// spans fetches a napletd telemetry endpoint's migration-span ring and
// pretty-prints it grouped by naplet, one table per journey, matching the
// metrics subcommand's formatting. A naplet ID narrows the fetch to one
// journey server-side.
func spans(addr, nid string) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := addr + "/spans"
	if nid != "" {
		url += "?naplet=" + neturl.QueryEscape(nid)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		log.Fatalf("napletctl spans: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("napletctl spans: %s returned %s", addr, resp.Status)
	}
	var all []telemetry.HopSpan
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		log.Fatalf("napletctl spans: decode: %v", err)
	}
	if len(all) == 0 {
		fmt.Println("no spans")
		return
	}

	byNaplet := make(map[string][]telemetry.HopSpan)
	for _, s := range all {
		byNaplet[s.Naplet] = append(byNaplet[s.Naplet], s)
	}
	naplets := make([]string, 0, len(byNaplet))
	for n := range byNaplet {
		naplets = append(naplets, n)
	}
	sort.Strings(naplets)
	for _, n := range naplets {
		rows := byNaplet[n]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Hop != rows[j].Hop {
				return rows[i].Hop < rows[j].Hop
			}
			return rows[i].Start.Before(rows[j].Start)
		})
		tbl := stats.NewTable(n, "hop", "outcome", "total", "negotiate", "transfer", "bytes")
		for _, s := range rows {
			outcome := s.Outcome
			if s.Err != "" {
				outcome += " (" + s.Err + ")"
			}
			tbl.AddRow(fmt.Sprintf("%s -> %s", s.From, s.To), s.Hop, outcome,
				s.Total, s.Negotiation, s.Transfer, s.RecordBytes+s.CodeBytes)
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
}

// printMean derives a mean from a histogram's _sum/_count pair.
func printMean(values map[string]float64, family, label string) {
	count := values[family+"_count"]
	if count <= 0 {
		return
	}
	mean := time.Duration(values[family+"_sum"] / count * float64(time.Second))
	fmt.Printf("%s: %s over %.0f samples\n", label, mean, count)
}

// parsePrometheus extracts samples from text exposition format 0.0.4.
func parsePrometheus(text string) []sample {
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		name := line[:i]
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		family := name
		if j := strings.IndexByte(family, '{'); j >= 0 {
			family = family[:j]
		}
		out = append(out, sample{name: name, family: family, value: v})
	}
	return out
}

// formatMetric renders integral counters without decimals and everything
// else with sensible precision.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// call performs one management exchange with the home server.
func call(node transport.Node, home string, body server.ControlBody) server.ControlReplyBody {
	f, err := wire.NewFrame(wire.KindControl, "", "", &body)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	reply, err := node.Call(ctx, home, f)
	if err != nil {
		log.Fatalf("napletctl: %v", err)
	}
	var rb server.ControlReplyBody
	if err := reply.Body(&rb); err != nil {
		log.Fatal(err)
	}
	return rb
}

func launch(node transport.Node, home string, args []string) {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	codebase := fs.String("codebase", "example.Greeter", "registered codebase name")
	route := fs.String("route", "", `itinerary, e.g. "seq(host:port, host:port)"`)
	owner := fs.String("owner", "czxu", "launching principal")
	params := fs.String("params", "", "semicolon-separated agent parameters (NMNaplet MIB OIDs)")
	failover := fs.String("failover", "", "dead-destination policy: none | skip | alternates | home")
	wait := fs.Bool("wait", false, "poll until the naplet completes, then print its reports")
	fs.Parse(args)
	if *route == "" {
		log.Fatal("napletctl launch: -route is required")
	}

	body := server.ControlBody{
		Op:       "launch",
		Owner:    *owner,
		Codebase: *codebase,
		Route:    *route,
		Failover: *failover,
	}
	if *params != "" {
		body.Params = strings.Split(*params, ";")
	}
	rb := call(node, home, body)
	if !rb.OK {
		log.Fatalf("napletctl: launch failed: %s", rb.Err)
	}
	fmt.Println("launched:", rb.Status)
	if !*wait {
		return
	}

	nid, err := id.Parse(rb.Status)
	if err != nil {
		log.Fatal(err)
	}
	for {
		st := call(node, home, server.ControlBody{Op: "status", NapletID: nid})
		if !st.OK {
			log.Fatalf("napletctl: %s", st.Err)
		}
		fmt.Println("status:", st.Status)
		if st.Status == "completed" || st.Status == "terminated" || st.Status == "trapped" {
			if st.Err != "" {
				fmt.Println("error:", st.Err)
			}
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	res := call(node, home, server.ControlBody{Op: "results", NapletID: nid})
	for i, r := range res.Results {
		printReport(i+1, r)
	}
}

// printReport renders a report: NMNaplet payloads decode into a per-device
// table, anything else prints as text.
func printReport(n int, body []byte) {
	if rep, route, err := man.DecodeReport(body); err == nil && len(rep) > 0 {
		fmt.Printf("report %d (route %s):\n", n, strings.Join(route, " -> "))
		for _, dev := range rep.SortedDevices() {
			for oid, val := range rep[dev] {
				fmt.Printf("  %s %s = %s\n", dev, oid, val)
			}
		}
		return
	}
	fmt.Printf("report %d: %s\n", n, string(body))
}

func simpleOp(node transport.Node, home, op string, args []string) {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	idStr := fs.String("id", "", "naplet identifier")
	fs.Parse(args)
	nid, err := id.Parse(*idStr)
	if err != nil {
		log.Fatalf("napletctl %s: bad -id: %v", op, err)
	}
	rb := call(node, home, server.ControlBody{Op: op, NapletID: nid})
	if !rb.OK {
		log.Fatalf("napletctl: %s", rb.Err)
	}
	if op == "status" {
		fmt.Println("status:", rb.Status)
		if rb.Err != "" {
			fmt.Println("error:", rb.Err)
		}
		return
	}
	for i, r := range rb.Results {
		printReport(i+1, r)
	}
}

// footprints prints the server's visit records.
func footprints(node transport.Node, home string) {
	rb := call(node, home, server.ControlBody{Op: "footprints"})
	if !rb.OK {
		log.Fatalf("napletctl: %s", rb.Err)
	}
	for _, fp := range rb.Footprints {
		left := "still here"
		if !fp.LeftAt.IsZero() {
			left = fp.LeftAt.Format(time.RFC3339) + " -> " + fp.Dest
			if fp.Dest == "" {
				left = "ended " + fp.LeftAt.Format(time.RFC3339)
			}
		}
		fmt.Printf("%s  codebase=%s  from=%s  arrived=%s  %s\n",
			fp.NapletID, fp.Codebase, fp.Source, fp.ArrivedAt.Format(time.RFC3339), left)
	}
	if len(rb.Footprints) == 0 {
		fmt.Println("no footprints")
	}
}

// locate asks the home server's locator where a naplet currently resides —
// the same query path peers use, so it exercises the directory plane (and
// its shard routing, when configured) end to end.
func locate(node transport.Node, home string, args []string) {
	fs := flag.NewFlagSet("locate", flag.ExitOnError)
	idStr := fs.String("id", "", "naplet identifier")
	fs.Parse(args)
	nid, err := id.Parse(*idStr)
	if err != nil {
		log.Fatalf("napletctl locate: bad -id: %v", err)
	}
	f := wire.BinaryFrame(wire.KindLocatorQuery, "", home, &locator.QueryBody{NapletID: nid})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := node.Call(ctx, home, f)
	if err != nil {
		log.Fatalf("napletctl locate: %v", err)
	}
	var rb locator.ReplyBody
	if err := rb.Decode(reply.Payload); err != nil {
		log.Fatal(err)
	}
	if !rb.Found {
		log.Fatalf("napletctl locate: %s: not found", nid)
	}
	fmt.Println("resident at:", rb.Server)
}

func control(node transport.Node, home string, args []string) {
	fs := flag.NewFlagSet("control", flag.ExitOnError)
	idStr := fs.String("id", "", "naplet identifier")
	verb := fs.String("verb", "callback", "callback | suspend | resume | terminate")
	fs.Parse(args)
	nid, err := id.Parse(*idStr)
	if err != nil {
		log.Fatalf("napletctl control: bad -id: %v", err)
	}
	rb := call(node, home, server.ControlBody{
		Op:       "control",
		NapletID: nid,
		Verb:     naplet.ControlVerb(*verb),
	})
	if !rb.OK {
		log.Fatalf("napletctl: %s", rb.Err)
	}
	fmt.Println("control delivered")
}
