// Command napletctl manages naplets in a running naplet space from the
// command line: it launches agents on itineraries written in the paper's
// operator notation, queries their status, fetches their reports, and
// casts control messages (callback / suspend / resume / terminate).
//
// Usage:
//
//	napletctl -home <addr> launch -codebase <name> -route "seq(a,b)" [-owner u] [-params p1;p2] [-wait]
//	napletctl -home <addr> status  -id <naplet-id>
//	napletctl -home <addr> results -id <naplet-id>
//	napletctl -home <addr> control -id <naplet-id> -verb terminate
//
// The home address is the napletd that launched (or will launch) the
// naplet.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/id"
	"repro/internal/man"
	"repro/internal/naplet"
	"repro/internal/server"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	home := flag.String("home", "127.0.0.1:7001", "home naplet server address")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	fabric := transport.NewTCPFabric()
	node, err := fabric.Attach("127.0.0.1:0", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, fmt.Errorf("napletctl serves no requests")
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	switch cmd {
	case "launch":
		launch(node, *home, rest)
	case "status":
		simpleOp(node, *home, "status", rest)
	case "results":
		simpleOp(node, *home, "results", rest)
	case "control":
		control(node, *home, rest)
	case "footprints":
		footprints(node, *home)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: napletctl -home <addr> {launch|status|results|control|footprints} [flags]")
	os.Exit(2)
}

// call performs one management exchange with the home server.
func call(node transport.Node, home string, body server.ControlBody) server.ControlReplyBody {
	f, err := wire.NewFrame(wire.KindControl, "", "", &body)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	reply, err := node.Call(ctx, home, f)
	if err != nil {
		log.Fatalf("napletctl: %v", err)
	}
	var rb server.ControlReplyBody
	if err := reply.Body(&rb); err != nil {
		log.Fatal(err)
	}
	return rb
}

func launch(node transport.Node, home string, args []string) {
	fs := flag.NewFlagSet("launch", flag.ExitOnError)
	codebase := fs.String("codebase", "example.Greeter", "registered codebase name")
	route := fs.String("route", "", `itinerary, e.g. "seq(host:port, host:port)"`)
	owner := fs.String("owner", "czxu", "launching principal")
	params := fs.String("params", "", "semicolon-separated agent parameters (NMNaplet MIB OIDs)")
	wait := fs.Bool("wait", false, "poll until the naplet completes, then print its reports")
	fs.Parse(args)
	if *route == "" {
		log.Fatal("napletctl launch: -route is required")
	}

	body := server.ControlBody{
		Op:       "launch",
		Owner:    *owner,
		Codebase: *codebase,
		Route:    *route,
	}
	if *params != "" {
		body.Params = strings.Split(*params, ";")
	}
	rb := call(node, home, body)
	if !rb.OK {
		log.Fatalf("napletctl: launch failed: %s", rb.Err)
	}
	fmt.Println("launched:", rb.Status)
	if !*wait {
		return
	}

	nid, err := id.Parse(rb.Status)
	if err != nil {
		log.Fatal(err)
	}
	for {
		st := call(node, home, server.ControlBody{Op: "status", NapletID: nid})
		if !st.OK {
			log.Fatalf("napletctl: %s", st.Err)
		}
		fmt.Println("status:", st.Status)
		if st.Status == "completed" || st.Status == "terminated" || st.Status == "trapped" {
			if st.Err != "" {
				fmt.Println("error:", st.Err)
			}
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	res := call(node, home, server.ControlBody{Op: "results", NapletID: nid})
	for i, r := range res.Results {
		printReport(i+1, r)
	}
}

// printReport renders a report: NMNaplet payloads decode into a per-device
// table, anything else prints as text.
func printReport(n int, body []byte) {
	if rep, route, err := man.DecodeReport(body); err == nil && len(rep) > 0 {
		fmt.Printf("report %d (route %s):\n", n, strings.Join(route, " -> "))
		for _, dev := range rep.SortedDevices() {
			for oid, val := range rep[dev] {
				fmt.Printf("  %s %s = %s\n", dev, oid, val)
			}
		}
		return
	}
	fmt.Printf("report %d: %s\n", n, string(body))
}

func simpleOp(node transport.Node, home, op string, args []string) {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	idStr := fs.String("id", "", "naplet identifier")
	fs.Parse(args)
	nid, err := id.Parse(*idStr)
	if err != nil {
		log.Fatalf("napletctl %s: bad -id: %v", op, err)
	}
	rb := call(node, home, server.ControlBody{Op: op, NapletID: nid})
	if !rb.OK {
		log.Fatalf("napletctl: %s", rb.Err)
	}
	if op == "status" {
		fmt.Println("status:", rb.Status)
		if rb.Err != "" {
			fmt.Println("error:", rb.Err)
		}
		return
	}
	for i, r := range rb.Results {
		printReport(i+1, r)
	}
}

// footprints prints the server's visit records.
func footprints(node transport.Node, home string) {
	rb := call(node, home, server.ControlBody{Op: "footprints"})
	if !rb.OK {
		log.Fatalf("napletctl: %s", rb.Err)
	}
	for _, fp := range rb.Footprints {
		left := "still here"
		if !fp.LeftAt.IsZero() {
			left = fp.LeftAt.Format(time.RFC3339) + " -> " + fp.Dest
			if fp.Dest == "" {
				left = "ended " + fp.LeftAt.Format(time.RFC3339)
			}
		}
		fmt.Printf("%s  codebase=%s  from=%s  arrived=%s  %s\n",
			fp.NapletID, fp.Codebase, fp.Source, fp.ArrivedAt.Format(time.RFC3339), left)
	}
	if len(rb.Footprints) == 0 {
		fmt.Println("no footprints")
	}
}

func control(node transport.Node, home string, args []string) {
	fs := flag.NewFlagSet("control", flag.ExitOnError)
	idStr := fs.String("id", "", "naplet identifier")
	verb := fs.String("verb", "callback", "callback | suspend | resume | terminate")
	fs.Parse(args)
	nid, err := id.Parse(*idStr)
	if err != nil {
		log.Fatalf("napletctl control: bad -id: %v", err)
	}
	rb := call(node, home, server.ControlBody{
		Op:       "control",
		NapletID: nid,
		Verb:     naplet.ControlVerb(*verb),
	})
	if !rb.OK {
		log.Fatalf("napletctl: %s", rb.Err)
	}
	fmt.Println("control delivered")
}
