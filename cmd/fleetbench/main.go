// Command fleetbench benchmarks the fleet control plane at
// hundreds-of-docks scale, in-process:
//
//   - codec: the fleet protocol's binary bodies on the heartbeat and
//     event-export hot paths (encode, decode, round-trip).
//   - broadcast: Publish fan-out with 64 live subscribers (the
//     O(subscribers) cost every ingested event pays), plus a concurrent
//     publish/poll throughput sample.
//   - watchdog: the decaying ingest-rate estimator.
//   - wave: scheduler throughput driving a launch wave across 200
//     simulated nodes with an in-memory launcher — the control-plane
//     overhead per launch with the dock round-trips taken out.
//
// Results land in BENCH_fleet.json via `make bench-fleet`. With -check
// <file>, the deterministic codec/broadcast/watchdog benchmarks re-run
// against the committed baseline: a >10% regression in allocs/op fails
// the run (ns/op is reported but not gated).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchcheck"
	"repro/internal/fleet"
)

// report extends the shared envelope with the workload shape.
type report struct {
	benchcheck.Report
	Nodes       int `json:"nodes"`
	Subscribers int `json:"subscribers"`
}

func main() {
	count := flag.Int("count", 5, "samples per benchmark")
	nodes := flag.Int("nodes", 200, "simulated docks in the wave benchmark")
	launches := flag.Int("launches", 4000, "launches per wave sample")
	subs := flag.Int("subs", 64, "live subscribers in the broadcast benchmarks")
	out := flag.String("o", "BENCH_fleet.json", "output JSON path")
	check := flag.String("check", "", "baseline JSON to regression-check against (deterministic benches only)")
	flag.Parse()

	benches := []benchcheck.Bench{
		{Name: "codec/heartbeat-roundtrip", Fn: benchHeartbeatRoundTrip, Deterministic: true},
		{Name: "codec/event-batch-encode", Fn: benchEventBatchEncode, Deterministic: true},
		{Name: "codec/event-batch-decode", Fn: benchEventBatchDecode, Deterministic: true},
		{Name: fmt.Sprintf("broadcast/publish-%dsubs", *subs), Fn: benchPublish(*subs), Deterministic: true},
		{Name: "watchdog/rate-observe", Fn: benchRateObserve, Deterministic: true},
	}
	if *check != "" {
		if err := benchcheck.Check("fleetbench", *check, benches, *count); err != nil {
			fatal(err)
		}
		fmt.Println("fleetbench: regression check passed")
		return
	}

	rep := report{
		Report:      benchcheck.NewReport(*count),
		Nodes:       *nodes,
		Subscribers: *subs,
	}
	for _, bm := range benches {
		res := benchcheck.Run(bm, *count)
		rep.Results = append(rep.Results, res)
		printRow(res)
	}

	for _, res := range []benchcheck.Result{
		waveThroughput(*nodes, *launches, *count),
		broadcastThroughput(*subs, *count),
	} {
		rep.Results = append(rep.Results, res)
		printRow(res)
	}

	if err := benchcheck.WriteFile(*out, &rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func printRow(res benchcheck.Result) {
	if res.Median.OpsPerSec > 0 {
		fmt.Printf("%-36s %12.0f ops/s %6d allocs/op\n",
			res.Name, res.Median.OpsPerSec, res.Median.AllocsPerOp)
		return
	}
	fmt.Printf("%-36s %12.1f ns/op %8d B/op %6d allocs/op\n",
		res.Name, res.Median.NsPerOp, res.Median.BytesPerOp, res.Median.AllocsPerOp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetbench:", err)
	os.Exit(1)
}

// benchTime is fixed so encoded bodies are identical across runs.
var benchTime = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

// ---- Deterministic codec, broadcast, and watchdog benchmarks ----

func benchEvent(i int) fleet.Event {
	return fleet.Event{
		Node:    "dock7:7001",
		Kind:    fleet.EventSpan,
		Naplet:  "czxu:sa:12345",
		Hop:     i,
		From:    "dock7:7001",
		To:      "dock8:7001",
		At:      benchTime.Add(time.Duration(i) * time.Millisecond),
		Outcome: "ok",
		Bytes:   2048,
		Elapsed: 3 * time.Millisecond,
	}
}

func benchBatch() fleet.EventBatchBody {
	b := fleet.EventBatchBody{Node: "dock7:7001"}
	for i := 0; i < 16; i++ {
		b.Events = append(b.Events, benchEvent(i))
	}
	return b
}

func benchHeartbeatRoundTrip(b *testing.B) {
	hb := fleet.HeartbeatBody{
		Node: "dock7:7001", Seq: 42, Residents: 17,
		DiskUsedBytes: 1 << 30, Draining: false,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := hb.AppendBinary(make([]byte, 0, hb.EncodedSize()))
		var dec fleet.HeartbeatBody
		if err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEventBatchEncode(b *testing.B) {
	batch := benchBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.AppendBinary(make([]byte, 0, batch.EncodedSize()))
	}
}

func benchEventBatchDecode(b *testing.B) {
	batch := benchBatch()
	buf := batch.AppendBinary(make([]byte, 0, batch.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec fleet.EventBatchBody
		if err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPublish measures one Publish against n live DownSample
// subscribers — the per-event fan-out cost on the ingest path. Rings
// overwrite in place, so the steady state allocates nothing.
func benchPublish(n int) func(b *testing.B) {
	return func(b *testing.B) {
		bc := fleet.NewBroadcaster(fleet.BroadcasterConfig{Buf: 1024})
		for i := 0; i < n; i++ {
			bc.Subscribe(1024, fleet.DownSample)
		}
		ev := benchEvent(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc.Publish(ev)
		}
	}
}

func benchRateObserve(b *testing.B) {
	est := fleet.NewRateEstimator(5 * time.Second)
	now := benchTime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Millisecond)
		est.Observe(512, now)
		est.Rate(now)
	}
}

// ---- Throughput samples (not -check gated) ----

// benchLauncher is an instant in-memory Launcher + NodeSource: every
// wait completes immediately, so the measured rate is the scheduler's
// own dispatch/bookkeeping overhead per launch.
type benchLauncher struct {
	nodes  []string
	nextID atomic.Uint64
}

func (l *benchLauncher) Schedulable() []string { return l.nodes }
func (l *benchLauncher) Dead(string) bool      { return false }

func (l *benchLauncher) Launch(context.Context, string, fleet.LaunchSpec) (string, error) {
	return fmt.Sprintf("n%d", l.nextID.Add(1)), nil
}

func (l *benchLauncher) Wait(context.Context, string, string) (string, string, error) {
	return "completed", "ok", nil
}

// waveThroughput measures scheduler launches/second across a simulated
// fleet of nodes docks.
func waveThroughput(nodes, launches, count int) benchcheck.Result {
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("dock%d:7001", i)
	}
	res := benchcheck.Result{Name: fmt.Sprintf("wave/%dnodes-launches", nodes)}
	for s := 0; s < count; s++ {
		l := &benchLauncher{nodes: names}
		sched, err := fleet.NewScheduler(fleet.SchedulerConfig{
			Nodes: l, Launcher: l, PollEvery: 50 * time.Microsecond,
		})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		wr, err := sched.Run(context.Background(), fleet.WaveSpec{
			Name:       "bench",
			Count:      launches,
			Routes:     []string{"seq(a,b)"},
			Codebase:   "bench.Noop",
			PerNodeCap: 4,
		})
		if err != nil {
			fatal(err)
		}
		if wr.Completed != launches {
			fatal(fmt.Errorf("wave completed %d/%d", wr.Completed, launches))
		}
		elapsed := time.Since(start)
		res.Samples = append(res.Samples, benchcheck.Sample{
			OpsPerSec: float64(launches) / elapsed.Seconds(),
			NsPerOp:   float64(elapsed.Nanoseconds()) / float64(launches),
		})
	}
	res.Median = benchcheck.Median(res.Samples, func(s benchcheck.Sample) float64 { return -s.OpsPerSec })
	return res
}

// broadcastThroughput measures sustained publish rate with subs
// subscribers being drained concurrently by pollers — the whole
// fan-out/consume loop, not just the publish hot path.
func broadcastThroughput(subs, count int) benchcheck.Result {
	const events = 200_000
	res := benchcheck.Result{Name: fmt.Sprintf("broadcast/publish-poll-%dsubs", subs)}
	for s := 0; s < count; s++ {
		bc := fleet.NewBroadcaster(fleet.BroadcasterConfig{Buf: 1024})
		ids := make([]string, subs)
		for i := range ids {
			ids[i] = bc.Subscribe(1024, fleet.DownSample)
		}
		var stop atomic.Bool
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for !stop.Load() {
					evs, _, err := bc.Poll(id, 512)
					if err != nil {
						return
					}
					// Back off when drained: a spinning poller would only
					// measure mutex contention, not fan-out capacity.
					if len(evs) == 0 {
						time.Sleep(100 * time.Microsecond)
					}
				}
			}(id)
		}
		ev := benchEvent(0)
		start := time.Now()
		for i := 0; i < events; i++ {
			bc.Publish(ev)
		}
		elapsed := time.Since(start)
		stop.Store(true)
		wg.Wait()
		res.Samples = append(res.Samples, benchcheck.Sample{
			OpsPerSec: float64(events) / elapsed.Seconds(),
			NsPerOp:   float64(elapsed.Nanoseconds()) / float64(events),
		})
	}
	res.Median = benchcheck.Median(res.Samples, func(s benchcheck.Sample) float64 { return -s.OpsPerSec })
	return res
}
