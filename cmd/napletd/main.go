// Command napletd runs one naplet server over real TCP, forming a naplet
// space with other napletd processes (and optionally a central directory).
//
// Each daemon registers the built-in demo codebases (example.Greeter for
// quick tours, naplet.NMNaplet for network management) and hosts a
// simulated managed device behind the NetManagement privileged service, so
// napletctl can drive the paper's §6 application across real processes.
//
// A two-host session:
//
//	napletd -listen 127.0.0.1:7001 &
//	napletd -listen 127.0.0.1:7002 &
//	napletctl -home 127.0.0.1:7001 launch -codebase example.Greeter \
//	    -route "seq(127.0.0.1:7002)" -wait
//
// Run one directory-hosting daemon with -directory-serve and point the
// others at it with -directory to switch the space into directory mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/directory"
	"repro/internal/dock"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/locator"
	"repro/internal/man"
	"repro/internal/naplet"
	"repro/internal/overload"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/snmp"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// greeter is the demo tour agent compiled into every daemon.
type greeter struct{}

func (greeter) OnStart(ctx *naplet.Context) error {
	var tour []string
	ctx.State().Load("tour", &tour)
	return ctx.State().SetPrivate("tour", append(tour, ctx.Server))
}

func (greeter) OnDestroy(ctx *naplet.Context) {
	var tour []string
	ctx.State().Load("tour", &tour)
	rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ctx.Listener.Report(rctx, []byte("toured: "+strings.Join(tour, " -> ")))
}

func buildRegistry() (*registry.Registry, error) {
	reg := registry.New()
	if err := reg.Register(&registry.Codebase{
		Name: "example.Greeter",
		New:  func() naplet.Behavior { return greeter{} },
	}); err != nil {
		return nil, err
	}
	if err := man.RegisterCodebase(reg, 0); err != nil {
		return nil, err
	}
	return reg, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "TCP address to serve on")
	dirServe := flag.Bool("directory-serve", false, "also host the central naplet directory on this address +1000")
	dirAddr := flag.String("directory", "", "directory address(es), comma-separated; more than one enables the sharded, replicated location plane (and directory location mode)")
	dirShards := flag.Int("dir-shards", 1, "with -directory-serve: number of directory shard services to host, on ports +1000, +1001, ...")
	dirReplicas := flag.Int("dir-replicas", 2, "replica-group size per directory shard (clamped to the node count)")
	community := flag.String("community", "public", "SNMP community of the local simulated device")
	slots := flag.Int("slots", 0, "concurrent naplet execution slots (0 = unlimited)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics, /healthz, /readyz and /spans (empty = disabled)")
	masterAddr := flag.String("master", "", "napletmaster address to register with (empty = no fleet control plane)")
	heartbeat := flag.Duration("heartbeat", time.Second, "initial fleet heartbeat cadence (the master's register reply overrides it)")
	fleetLabels := flag.String("fleet-labels", "", "comma-separated operator labels reported to the master")
	dispatchRetries := flag.Int("dispatch-retries", 8, "migration retry budget per hop (exponential backoff)")
	dockDir := flag.String("dock-dir", "", "directory for durable dock snapshots; on boot the server restores resident naplets, held mail and dedup state from it (empty = volatile)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before the hard close")
	chaosSeed := flag.Int64("chaos-seed", 0, "enable the deterministic fault injector with this seed (0 = off)")
	chaosDrop := flag.Float64("chaos-drop", 0.05, "chaos: probability of dropping a request frame")
	chaosDup := flag.Float64("chaos-dup", 0.05, "chaos: probability of duplicating a frame")
	chaosDelay := flag.Float64("chaos-delay", 0.05, "chaos: probability of a latency spike")
	chaosOverload := flag.Float64("chaos-overload", 0, "chaos: probability of synthesizing a typed overload shed")
	overloadOn := flag.Bool("overload", false, "enable the overload-resilience stack: admission gate, per-peer circuit breakers, retry budgets")
	ovInFlight := flag.Int("overload-inflight", 0, "overload: max concurrently executing bulk requests (0 = default 64)")
	ovQueue := flag.Int("overload-queue", 0, "overload: bulk admission queue depth (0 = default 2x inflight)")
	ovMaxWait := flag.Duration("overload-max-wait", 0, "overload: longest a bulk request may queue before a typed shed (0 = default 1s)")
	ovBreakerFails := flag.Int("overload-breaker-failures", 0, "overload: consecutive transport failures that open a peer's breaker (0 = default 5)")
	ovRetryRatio := flag.Float64("overload-retry-ratio", 0, "overload: retry-budget token earned per first attempt (0 = default 0.2)")
	ovRetryBurst := flag.Float64("overload-retry-burst", 0, "overload: retry-budget bucket cap and initial fill (0 = default 10)")
	flag.Parse()

	reg, err := buildRegistry()
	if err != nil {
		log.Fatal(err)
	}
	tcp := transport.NewTCPFabric()
	telem := telemetry.NewRegistry()
	tracer := telemetry.NewHopTracer(0)
	tcp.Instrument(telem)

	var fabric transport.Fabric = tcp
	if *chaosSeed != 0 {
		inj := fault.New(fault.Config{
			Seed: *chaosSeed,
			P: fault.Probabilities{
				DropRequest: *chaosDrop,
				Duplicate:   *chaosDup,
				Delay:       *chaosDelay,
				Overload:    *chaosOverload,
			},
			DelaySpike: 5 * time.Millisecond,
			Telemetry:  telem,
		})
		fabric = inj.Fabric(tcp)
		log.Printf("napletd: CHAOS fault injection enabled (seed %d, drop %.2f, dup %.2f, delay %.2f, overload %.2f)",
			*chaosSeed, *chaosDrop, *chaosDup, *chaosDelay, *chaosOverload)
	}

	var dirAddrs []string
	for _, a := range strings.Split(*dirAddr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			dirAddrs = append(dirAddrs, a)
		}
	}
	mode := locator.ModeForward
	if len(dirAddrs) > 0 {
		mode = locator.ModeDirectory
	}
	if *dirServe {
		host, port, ok := strings.Cut(*listen, ":")
		if !ok {
			log.Fatalf("napletd: cannot derive directory port from %q", *listen)
		}
		var p int
		fmt.Sscanf(port, "%d", &p)
		if *dirShards < 1 {
			*dirShards = 1
		}
		for i := 0; i < *dirShards; i++ {
			daddr := fmt.Sprintf("%s:%d", host, p+1000+i)
			if _, err := directory.NewService().Serve(fabric, daddr); err != nil {
				log.Fatal(err)
			}
			dirAddrs = append(dirAddrs, daddr)
			log.Printf("napletd: directory service on %s", daddr)
		}
		mode = locator.ModeDirectory
	}

	var dockStore *dock.Store
	if *dockDir != "" {
		dockStore, err = dock.Open(*dockDir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("napletd: durable dock in %s", *dockDir)
	}

	var ovOpts *overload.Options
	if *overloadOn {
		ovOpts = &overload.Options{
			MaxInFlight:     *ovInFlight,
			MaxQueue:        *ovQueue,
			MaxWait:         *ovMaxWait,
			BreakerFailures: *ovBreakerFails,
			RetryRatio:      *ovRetryRatio,
			RetryBurst:      *ovRetryBurst,
		}
		log.Printf("napletd: overload stack enabled (inspect with `napletctl overload <metrics-addr>`)")
	}

	srv, err := server.New(server.Config{
		Name:           *listen,
		Fabric:         fabric,
		Overload:       ovOpts,
		Registry:       reg,
		LocatorMode:    mode,
		DirectoryAddrs: dirAddrs,
		DirReplicas:    *dirReplicas,
		Slots:          *slots,
		Telemetry:      telem,
		Tracer:         tracer,
		Dock:           dockStore,
		// Real deployments tolerate transient loss: retry with the
		// navigator's default exponential backoff (25ms -> 2s).
		DispatchRetries: *dispatchRetries,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fleet control plane: register with the master, heartbeat with dock
	// stats, and export hop spans and nav-log events. The agent's queue
	// sheds load rather than block the migration path.
	var agent *fleet.Agent
	if *masterAddr != "" {
		var labels []string
		for _, l := range strings.Split(*fleetLabels, ",") {
			if l = strings.TrimSpace(l); l != "" {
				labels = append(labels, l)
			}
		}
		agent, err = fleet.NewAgent(fleet.AgentConfig{
			Node:           srv.Node(),
			Master:         *masterAddr,
			MetricsAddr:    *metricsAddr,
			Labels:         labels,
			HeartbeatEvery: *heartbeat,
			Telemetry:      telem,
			Stats: func() fleet.NodeStats {
				st := fleet.NodeStats{
					Residents: srv.Manager().Resident(),
					Draining:  srv.Draining(),
				}
				if dockStore != nil {
					if used, err := dockStore.DiskUsage(); err == nil {
						st.DiskUsedBytes = used
					}
				}
				return st
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		tracer.SetSink(func(sp telemetry.HopSpan) { agent.Publish(fleet.SpanEvent(sp)) })
		srv.SetEventSink(func(e server.Event) { agent.Publish(fleet.NavEvent(e)) })
		agent.Run()
		defer agent.Close()
		log.Printf("napletd: fleet agent registering with master %s", *masterAddr)
	}

	if *metricsAddr != "" {
		start := time.Now()
		telem.GaugeFunc("naplet_process_uptime_seconds", "seconds since the daemon started", func() float64 {
			return time.Since(start).Seconds()
		})
		telem.GaugeFunc("naplet_process_goroutines", "goroutines in the daemon process", func() float64 {
			return float64(runtime.NumGoroutine())
		})
		// A draining server answers 503 so load balancers and peers stop
		// routing new work here while the evacuation runs.
		handler := telemetry.Handler(telem, tracer, func() error {
			if srv.Draining() {
				return fmt.Errorf("draining")
			}
			return nil
		})
		// /readyz is stricter than /healthz: liveness says the process
		// runs; readiness says it may take traffic. Dock restore and
		// directory registration complete inside server.New, before this
		// listener exists, so readiness adds: not draining, and (when a
		// master is configured) fleet registration has succeeded.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
			if srv.Draining() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			if agent != nil && !agent.Registered() {
				http.Error(w, "awaiting fleet registration", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ready\n"))
		})
		go func() {
			log.Printf("napletd: telemetry on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("napletd: telemetry server: %v", err)
			}
		}()
	}

	// Host a simulated managed device behind the NetManagement service, so
	// NMNaplets have something to manage (§6).
	dev := snmp.NewDevice(snmp.DeviceConfig{
		Name:      *listen,
		Community: *community,
		Seed:      time.Now().UnixNano(),
		ExtraVars: 32,
	})
	if err := srv.Resources().RegisterPrivileged(man.ServiceName, man.NewNetManagementService(dev, *community)); err != nil {
		log.Fatal(err)
	}
	go func() {
		for range time.Tick(time.Second) {
			dev.Tick(time.Second)
		}
	}()

	log.Printf("napletd: serving naplet space on %s (location mode %s)", *listen, mode)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("napletd: draining (budget %s; signal again to force close)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		log.Printf("napletd: second signal, aborting drain")
		cancel()
	}()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("napletd: drain incomplete: %v", err)
	}
	cancel()
	log.Printf("napletd: shutting down")
	srv.Close()
}
