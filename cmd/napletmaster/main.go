// Command napletmaster runs the fleet control plane for a naplet space:
// napletd daemons started with -master register here and heartbeat; the
// master judges liveness, schedules launch waves across the healthy
// docks, fans dock events (hop spans, nav-log entries) out to
// subscribers, and applies watchdog backpressure to nodes drowning in
// disk or event traffic.
//
// A small fleet session:
//
//	napletmaster -listen 127.0.0.1:7100 &
//	napletd -listen 127.0.0.1:7001 -master 127.0.0.1:7100 &
//	napletd -listen 127.0.0.1:7002 -master 127.0.0.1:7100 &
//	napletctl -master 127.0.0.1:7100 fleet nodes
//	napletctl -master 127.0.0.1:7100 fleet wave -codebase example.Greeter \
//	    -routes "seq(127.0.0.1:7002)" -count 4
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7100", "TCP address to serve the fleet protocol on")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics and /healthz (empty = disabled)")
	heartbeatEvery := flag.Duration("heartbeat-every", time.Second, "fleet heartbeat cadence; registering nodes adopt it")
	statusPoll := flag.Duration("status-poll", 200*time.Millisecond, "naplet status polling cadence while a wave waits on launches")
	subBuf := flag.Int("sub-buf", 1024, "default event-subscriber ring capacity")
	dropSlow := flag.Bool("drop-slow", false, "drop slow event subscribers instead of down-sampling their stream")
	diskWatermark := flag.Uint64("disk-watermark", 0, "per-node dock disk watermark in bytes; a node over it stops receiving wave launches (0 = off)")
	ingestWatermark := flag.Float64("ingest-watermark", 0, "per-node event ingest watermark in bytes/second (0 = off)")
	flag.Parse()

	tcp := transport.NewTCPFabric()
	telem := telemetry.NewRegistry()
	tcp.Instrument(telem)

	policy := fleet.DownSample
	if *dropSlow {
		policy = fleet.DropSlow
	}
	m, err := fleet.NewMaster(fleet.Config{
		Name:             *listen,
		Fabric:           tcp,
		HeartbeatEvery:   *heartbeatEvery,
		StatusPoll:       *statusPoll,
		SubscriberBuf:    *subBuf,
		SubscriberPolicy: policy,
		Watchdog: fleet.WatchdogConfig{
			DiskWatermarkBytes: *diskWatermark,
			IngestWatermarkBps: *ingestWatermark,
		},
		Telemetry: telem,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *metricsAddr != "" {
		start := time.Now()
		telem.GaugeFunc("naplet_process_uptime_seconds", "seconds since the daemon started", func() float64 {
			return time.Since(start).Seconds()
		})
		telem.GaugeFunc("naplet_process_goroutines", "goroutines in the daemon process", func() float64 {
			return float64(runtime.NumGoroutine())
		})
		handler := telemetry.Handler(telem, nil, func() error { return nil })
		go func() {
			log.Printf("napletmaster: telemetry on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, handler); err != nil {
				log.Printf("napletmaster: telemetry server: %v", err)
			}
		}()
	}

	log.Printf("napletmaster: fleet control plane on %s (heartbeat %s)", *listen, *heartbeatEvery)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("napletmaster: shutting down")
	m.Close()
}
