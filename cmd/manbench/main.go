// Command manbench runs the reproduction experiments E1–E10 (see DESIGN.md
// and EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	manbench                 # run every experiment
//	manbench -exp e3         # run one experiment
//	manbench -quick          # shrunken sweeps
//	manbench -seed 7         # fix the random processes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (e1..e10, or all)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	seed := flag.Int64("seed", 42, "seed for all random processes")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.Lookup(strings.ToLower(*exp))
		if !ok {
			fmt.Fprintf(os.Stderr, "manbench: unknown experiment %q (e1..e10 or all)\n", *exp)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("==== %s — %s ====\n", strings.ToUpper(e.ID), e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "manbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
