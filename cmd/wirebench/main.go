// Command wirebench benchmarks the wire codec and the two transport
// fabrics, and writes the results to a JSON file so successive PRs have a
// perf trajectory to compare against (see `make bench`).
//
// Each benchmark is run -count times through testing.Benchmark with
// allocation accounting (the -benchmem quantities); the JSON records every
// sample plus the median, so noise on a shared machine is visible rather
// than hidden.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/wire"
)

type sample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type result struct {
	Name    string   `json:"name"`
	Samples []sample `json:"samples"`
	Median  sample   `json:"median"`
}

type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Count       int      `json:"count"`
	Results     []result `json:"results"`
}

func main() {
	count := flag.Int("count", 5, "samples per benchmark")
	out := flag.String("o", "BENCH_wire.json", "output JSON path")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"codec/encode-decode-1KiB", benchEncodeDecode},
		{"codec/encoded-size", benchEncodedSize},
		{"codec/stream-write-read", benchStreamWriteRead},
		{"fabric/netsim-call", benchNetsimCall},
		{"fabric/tcp-roundtrip", benchTCPRoundTrip},
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Count:       *count,
	}
	for _, bm := range benches {
		res := result{Name: bm.name}
		for i := 0; i < *count; i++ {
			r := testing.Benchmark(bm.fn)
			res.Samples = append(res.Samples, sample{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
		res.Median = median(res.Samples)
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op  (median of %d)\n",
			bm.name, res.Median.NsPerOp, res.Median.BytesPerOp, res.Median.AllocsPerOp, *count)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func median(s []sample) sample {
	sorted := append([]sample(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerOp < sorted[j].NsPerOp })
	return sorted[len(sorted)/2]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wirebench:", err)
	os.Exit(1)
}

// testFrame builds the 1 KiB reference frame used by the codec benchmarks.
func testFrame() wire.Frame {
	f, err := wire.NewFrame(wire.KindPost, "station", "device-7", &struct{ Data []byte }{Data: make([]byte, 1024)})
	if err != nil {
		fatal(err)
	}
	f.Seq = 42
	return f
}

func benchEncodeDecode(b *testing.B) {
	f := testFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEncodedSize(b *testing.B) {
	f := testFrame()
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		total += f.EncodedSize()
	}
	if total == 0 {
		b.Fatal("size must be positive")
	}
}

func benchStreamWriteRead(b *testing.B) {
	f := testFrame()
	var buf bytes.Buffer
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := wire.WriteFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		var err error
		if _, scratch, err = wire.ReadFrameReuse(&buf, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func benchNetsimCall(b *testing.B) {
	net := netsim.New(netsim.Config{})
	if _, err := net.Attach("srv", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.NewFrame(wire.KindPostConfirm, f.To, f.From, &struct{ OK bool }{true})
	}); err != nil {
		b.Fatal(err)
	}
	client, err := net.Attach("cli", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	req, _ := wire.NewFrame(wire.KindPost, "", "", &struct{ N int }{7})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, "srv", req); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTCPRoundTrip(b *testing.B) {
	fabric := transport.NewTCPFabric()
	srv, err := fabric.Attach("127.0.0.1:0", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.NewFrame(wire.KindPostConfirm, f.To, f.From, &struct{ OK bool }{true})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := fabric.Attach("127.0.0.1:0", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	req, _ := wire.NewFrame(wire.KindPost, "", "", &struct{ N int }{7})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, srv.Addr(), req); err != nil {
			b.Fatal(err)
		}
	}
}
