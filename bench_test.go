package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cnmp"
	"repro/internal/experiments"
	"repro/internal/id"
	"repro/internal/itinerary"
	"repro/internal/locator"
	"repro/internal/man"
	"repro/internal/navigator"
	"repro/internal/netsim"
	"repro/internal/snmp"
	"repro/internal/wire"
)

// The benchmarks below regenerate each experiment's headline measurement
// (see EXPERIMENTS.md). cmd/manbench prints the corresponding full tables.

// BenchmarkE1CloneID measures the identifier codec (E1 / Figure 1): clone
// derivation plus textual round trip.
func BenchmarkE1CloneID(b *testing.B) {
	root := id.MustNew("czxu", "ece.eng.wayne.edu", time.Unix(989688440, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := root.Clone(i%9 + 1)
		if err != nil {
			b.Fatal(err)
		}
		g, _ := c.Clone(1)
		if _, err := id.Parse(g.String()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2ServerRoundTrip measures one complete agent tour across four
// servers: the full Figure-2 component path per hop (E2).
func BenchmarkE2ServerRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRoundTrip(4, netsim.Loopback, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Tour == "" {
			b.Fatal("empty tour")
		}
	}
}

// BenchmarkE3ManVsCnmp measures one management sweep (8 devices × 16 vars)
// per strategy (E3 / Figure 3): the headline MAN-vs-CNMP comparison.
func BenchmarkE3ManVsCnmp(b *testing.B) {
	for _, strat := range []experiments.Strategy{
		experiments.StratCNMPMicro,
		experiments.StratCNMPBatch,
		experiments.StratMANSeq,
		experiments.StratMANBcast,
	} {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunE3Cell(strat, 8, 16, netsim.LAN,
					experiments.E3BundleSize, 0, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cell.StationBytes), "stationB")
				b.ReportMetric(float64(cell.TotalBytes), "totalB")
			}
		})
	}
}

// BenchmarkE4Itinerary measures completion time per itinerary shape over
// four servers with 5 ms of work per visit (E4 / §3).
func BenchmarkE4Itinerary(b *testing.B) {
	for _, shape := range []experiments.E4Shape{
		experiments.ShapeSeq, experiments.ShapePar, experiments.ShapeParOfSeq,
	} {
		b.Run(string(shape), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunE4(shape, 4, 5, netsim.LAN, 1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Locate measures the ping-pong tour per location mode (E5 /
// §4.1).
func BenchmarkE5Locate(b *testing.B) {
	for _, mode := range []locator.Mode{locator.ModeDirectory, locator.ModeHome, locator.ModeForward} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunE5(mode, 4, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Frames), "frames")
			}
		})
	}
}

// BenchmarkE6PostOffice measures exactly-once delivery of 16 messages to a
// naplet migrating across 4 servers (E6 / §4.2).
func BenchmarkE6PostOffice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6(4, 16, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Received != res.Sent {
			b.Fatalf("delivery broken: %+v", res)
		}
	}
}

// BenchmarkE7Migration measures a single naplet dispatch (E7 / §2.1),
// cold and warm code cache.
func BenchmarkE7Migration(b *testing.B) {
	for _, mode := range []navigator.CodeDelivery{navigator.Push, navigator.Pull} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			rig, err := experiments.NewE7Rig(32<<10, mode, netsim.Loopback, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rig.Dispatch(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8ServiceChannel measures one service-channel round trip (E8 /
// §5.3).
func BenchmarkE8ServiceChannel(b *testing.B) {
	res, err := experiments.RunE8(b.N, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.ChannelRTTPerSec, "rtt/s")
}

// BenchmarkE9Monitor measures priority-scheduled admission of 32 naplets
// onto 2 slots plus budget enforcement (E9 / §5.2).
func BenchmarkE9Monitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE9(16, 2, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if res.Killed != 4 {
			b.Fatalf("budget kills = %d", res.Killed)
		}
	}
}

// ---- micro-benchmarks on the core data structures ----

// BenchmarkItineraryStep measures one Next() decision on a 32-stop tour.
func BenchmarkItineraryStep(b *testing.B) {
	servers := make([]string, 32)
	for i := range servers {
		servers[i] = fmt.Sprintf("s%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := itinerary.MustNew(itinerary.SeqVisits(servers, ""))
		for {
			d, err := it.Next(nil)
			if err != nil {
				b.Fatal(err)
			}
			if d.Kind == itinerary.DecisionDone {
				break
			}
		}
	}
}

// BenchmarkFrameCodec measures wire frame encode+decode of a 1 KiB payload.
func BenchmarkFrameCodec(b *testing.B) {
	f, err := wire.NewFrame(wire.KindPost, "a", "b", &struct{ Data []byte }{Data: make([]byte, 1024)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMIBGet measures one SNMP get against a 100-object MIB.
func BenchmarkMIBGet(b *testing.B) {
	dev := snmp.NewDevice(snmp.DeviceConfig{Name: "r1", ExtraVars: 80})
	oid := snmp.ExtraVarOID(40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Agent.Get("public", oid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimCall measures one request/reply through the simulated
// fabric (no modeled delay sleeping).
func BenchmarkNetsimCall(b *testing.B) {
	net := netsim.New(netsim.Config{})
	net.Attach("srv", func(from string, f wire.Frame) (wire.Frame, error) {
		return wire.NewFrame(wire.KindPostConfirm, f.To, f.From, &struct{ OK bool }{true})
	})
	client, _ := net.Attach("cli", func(string, wire.Frame) (wire.Frame, error) {
		return wire.Frame{}, nil
	})
	req, _ := wire.NewFrame(wire.KindPost, "", "", &struct{ N int }{7})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, "srv", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSNMPOverFabric measures one CNMP round trip (request + reply
// over the simulated network), the unit cost behind the E3 CNMP rows.
func BenchmarkSNMPOverFabric(b *testing.B) {
	net := netsim.New(netsim.Config{})
	dev := snmp.NewDevice(snmp.DeviceConfig{Name: "r1"})
	if _, err := cnmp.AttachResponder(net, "r1:161", dev); err != nil {
		b.Fatal(err)
	}
	st, err := cnmp.NewStation(net, "station")
	if err != nil {
		b.Fatal(err)
	}
	oids := []snmp.OID{snmp.OIDSysName}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Get(ctx, "r1:161", oids, cnmp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNMNapletVisit measures one complete NMNaplet device visit
// (launch → migrate → service channel → report), the unit cost behind the
// E3 MAN rows.
func BenchmarkNMNapletVisit(b *testing.B) {
	tb, err := man.NewTestbed(man.TestbedConfig{Devices: 1, Seed: 1, BundleSize: 8 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	oids := tb.QueryOIDs(4)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tb.Station.CollectSequential(ctx, tb.DeviceNames, oids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10EventMonitoring measures one event-monitoring run (4 devices
// × 20 rounds) per strategy (E10).
func BenchmarkE10EventMonitoring(b *testing.B) {
	for _, strat := range []experiments.Strategy{experiments.StratCNMPTraps, experiments.StratMANFilter} {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunE10(strat, 4, 20, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cell.StationFrames), "stationFrames")
			}
		})
	}
}
