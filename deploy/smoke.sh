#!/bin/sh
# Fleet smoke test against the deploy/docker-compose.yml topology: the
# compose --wait already gated on every dock's /readyz, so the fleet is
# registered. List the nodes, run a launch wave touring all three docks,
# and assert every launch completed with the full tour.
set -eu

compose="docker compose -f deploy/docker-compose.yml"
ctl="$compose exec -T master napletctl -master master:7100"

echo "== fleet nodes =="
nodes=$($ctl fleet nodes)
echo "$nodes"
for d in dock1:7001 dock2:7001 dock3:7001; do
    echo "$nodes" | grep -q "$d.*alive" || {
        echo "smoke: $d not alive in the node table" >&2
        exit 1
    }
done

echo "== launch wave =="
want_count=4
want_tour="toured: dock1:7001 -> dock2:7001 -> dock3:7001"
wave=$($ctl fleet wave -name smoke -codebase example.Greeter \
    -routes "seq(dock1:7001,dock2:7001,dock3:7001)" -count $want_count \
    -timeout 2m)
echo "$wave"

echo "$wave" | grep -q "completed $want_count/$want_count (failed 0" || {
    echo "smoke: wave did not complete cleanly" >&2
    exit 1
}
# Exactly-once landings: every launch reports the full tour, each dock
# visited once, in itinerary order.
got=$(echo "$wave" | grep -c "completed — $want_tour" || true)
if [ "$got" != "$want_count" ]; then
    echo "smoke: want $want_count tours '$want_tour', got $got" >&2
    exit 1
fi

echo "smoke: ok"
