# Tier-1 verification and perf-trajectory targets.

# verify is the extended tier-1 gate: vet, build, full test suite, and a
# race pass over the packages that share sync.Pool buffers and per-
# connection scratch state.
verify:
	go vet ./...
	go build ./...
	go test ./...
	go test -race ./internal/wire/... ./internal/transport/... ./internal/netsim/...

# bench regenerates BENCH_wire.json, the codec/fabric perf baseline future
# PRs compare against. Samples each benchmark 5 times with allocation
# accounting (the -benchmem -count=5 quantities).
bench:
	go run ./cmd/wirebench -count 5 -o BENCH_wire.json

# fuzz runs the wire codec fuzz targets briefly; CI-sized smoke, not a
# campaign.
fuzz:
	go test -run '^$$' -fuzz FuzzDecode -fuzztime 15s ./internal/wire/
	go test -run '^$$' -fuzz FuzzReadFrame -fuzztime 15s ./internal/wire/

.PHONY: verify bench fuzz
