# Tier-1 verification and perf-trajectory targets.

# verify is the extended tier-1 gate: vet, build, full test suite, and a
# race pass over the packages that share sync.Pool buffers, per-
# connection scratch state, or lock-free metric hot paths.
verify:
	go vet ./...
	go build ./...
	go test ./...
	go test -race ./internal/wire/... ./internal/transport/... ./internal/netsim/... ./internal/telemetry/... ./internal/messenger/... ./internal/fault/... ./internal/health/... ./internal/dock/... ./internal/naplet/... ./internal/state/... ./internal/directory/... ./internal/locator/... ./internal/fleet/... ./internal/overload/...
	go run ./cmd/migrationbench -check BENCH_migration.json
	go run ./cmd/directorybench -check BENCH_directory.json
	go run ./cmd/fleetbench -check BENCH_fleet.json
	go run ./cmd/napletctl loadgen -check BENCH_loadgen.json
	$(MAKE) chaos

# chaos runs the seeded fault-injection suites under the race detector:
# ten fixed seeds driving tours and message streams through drops, dropped
# replies, duplicates, crashes and partitions (TestChaosSeeds), plus the
# server-death suite that crashes a mid-tour server for real and restarts
# it from its dock snapshot (TestChaosRestartSeeds), plus the directory
# suite that kills a shard replica mid-tour and asserts the location plane
# stays resolvable with exactly-once landings (TestChaosDirectorySeeds),
# plus the fleet suite that crash-kills a dock mid-launch-wave and asserts
# the master reschedules its launches with exactly-once landings while a
# slow event subscriber is shed without stalling ingest
# (TestChaosFleetSeeds), plus the overload suite that runs the fleet
# through synthesized overload sheds with the admission gate, breakers
# and retry budgets live, and reconciles every shed against the injector
# trail and telemetry (TestChaosOverloadSeeds). Reproduce a failing seed
# with:
# go test ./internal/server/ -run TestChaos -chaos.seed=N -v
# go test ./internal/fleet/  -run TestChaos -chaos.seed=N -v
chaos:
	go test -race -count=1 -run 'TestChaosSeeds|TestChaosRestartSeeds|TestChaosDirectorySeeds|TestChaosOverloadSeeds' ./internal/server/
	go test -race -count=1 -run 'TestChaosFleetSeeds' ./internal/fleet/

# bench regenerates BENCH_wire.json, the codec/fabric perf baseline future
# PRs compare against. Samples each benchmark 5 times with allocation
# accounting (the -benchmem -count=5 quantities).
bench:
	go run ./cmd/wirebench -count 5 -o BENCH_wire.json

# bench-telemetry regenerates BENCH_telemetry.json and enforces the
# telemetry cost contract: counter increments ≤25 ns/op with 0 allocs, and
# the instrumented TCP frame path within 5% of the BENCH_wire.json
# baseline.
bench-telemetry:
	go run ./cmd/telemetrybench -count 5 -o BENCH_telemetry.json

# fuzz runs the wire codec fuzz targets briefly; CI-sized smoke, not a
# campaign.
fuzz:
	go test -run '^$$' -fuzz FuzzDecode -fuzztime 15s ./internal/wire/
	go test -run '^$$' -fuzz FuzzReadFrame -fuzztime 15s ./internal/wire/

# bench-migration regenerates BENCH_migration.json: record/mail codec cost
# under the binary codec and the gob baseline it replaced, plus full
# naplet hops (landing, transfer, ack) over real TCP and the simulated
# WAN. `migrationbench -check` (run by verify) fails if allocs/op regress
# >10% against the committed file.
bench-migration:
	go run ./cmd/migrationbench -count 5 -o BENCH_migration.json

# bench-directory regenerates BENCH_directory.json: the location plane at
# one million registered naplets — the global-mutex single-node baseline
# against the sharded, replicated plane (per-node and aggregate), plus the
# directory body codecs and rendezvous routing. Generation self-asserts
# the sharded plane's aggregate lookup throughput at >= 4x the baseline;
# `directorybench -check` (run by verify) fails if the deterministic
# codec/ring benches regress allocs/op >10% against the committed file.
bench-directory:
	go run ./cmd/directorybench -count 5 -o BENCH_directory.json

# loadgen runs the full enterprise-scale load generation scenario: the
# man-sweep profile (2000 simulated SNMP devices, sustained mixed agent
# traffic, the §6 CNMP-vs-naplet sweep) against both the simulated WAN and
# a real TCP fabric, with the SLO table printed per run and a non-zero
# exit on any violation. Reproduce a failing run exactly with
# -loadgen.seed=N (the seed is printed in the run header).
loadgen:
	go run ./cmd/napletctl loadgen -profile man-sweep -devices 2000
	go run ./cmd/napletctl loadgen -profile man-sweep -faults -fabric netsim-lan

# bench-loadgen regenerates BENCH_loadgen.json, the loadgen trajectory
# baseline: work totals and station byte counts of the deterministic
# short-profile netsim run are gated; latency scalars ride along as
# context. The overload-resilience scenario is recorded as an extra run:
# `napletctl loadgen -check` (run by verify) replays the recorded
# profile/fabric/seed, then replays each extra and fails on its own
# violations (goodput floor, control-plane SLO, shed reconciliation).
bench-loadgen:
	go run ./cmd/napletctl loadgen -profile short -fabric netsim-wan -extra overload:netsim-lan -o BENCH_loadgen.json

# bench-fleet regenerates BENCH_fleet.json: the fleet control plane's
# protocol codecs, broadcaster fan-out with 64 live subscribers, the
# watchdog rate estimator, and wave-scheduling throughput across 200
# simulated docks. `fleetbench -check` (run by verify) fails if the
# deterministic benches regress allocs/op >10% against the committed file.
bench-fleet:
	go run ./cmd/fleetbench -count 5 -o BENCH_fleet.json

# compose-smoke builds the deploy/ images, boots a master + three docks
# under docker compose, waits for every dock to turn ready, runs a launch
# wave through napletctl, and asserts the tour results. Needs a docker
# daemon; CI gates on it, local runs are optional.
compose-smoke:
	docker compose -f deploy/docker-compose.yml up -d --build --wait
	./deploy/smoke.sh || (docker compose -f deploy/docker-compose.yml logs; exit 1)
	docker compose -f deploy/docker-compose.yml down -v

# fuzz-smoke gives every fuzz target ~10 seconds — enough to catch a fresh
# regression in the corpus-adjacent input space without slowing CI.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/wire/
	go test -run '^$$' -fuzz FuzzReadFrame -fuzztime 10s ./internal/wire/
	go test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/itinerary/
	go test -run '^$$' -fuzz 'FuzzDecodeRecord$$' -fuzztime 10s ./internal/naplet/
	go test -run '^$$' -fuzz 'FuzzDecodeMail$$' -fuzztime 10s ./internal/naplet/
	go test -run '^$$' -fuzz 'FuzzDecodeSnapshot$$' -fuzztime 10s ./internal/dock/

.PHONY: verify chaos bench bench-telemetry bench-migration bench-directory bench-fleet loadgen bench-loadgen compose-smoke fuzz fuzz-smoke
